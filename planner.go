package smol

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"smol/internal/blazeit"
	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/codec/vid"
	"smol/internal/costmodel"
	"smol/internal/hw"
	"smol/internal/img"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// QoS is a serving quality target, set per runtime (RuntimeConfig.QoS) and
// overridable per request (Server.ClassifyQoS). The zero value asks for
// maximum throughput: the planner picks the cheapest zoo entry with no
// accuracy floor.
type QoS struct {
	// MinAccuracy requires the chosen zoo entry's measured validation
	// accuracy to be at least this floor; among feasible entries the
	// planner maximizes predicted throughput.
	MinAccuracy float64
	// MaxLatencyUS caps the predicted worst-case per-image latency in
	// microseconds (the latency-constrained deployment of §3.1). Zero
	// means unconstrained.
	MaxLatencyUS float64
}

// ServePlan is the planner's decision for one request: the zoo entry it
// routed the request to, the joint decode/preprocessing plan for the
// request's input class, and the calibrated cost-model predictions that
// justified the choice. smol-query -explain prints it next to the measured
// throughput.
type ServePlan struct {
	// Entry is the chosen zoo entry ("variant@res", "variant@res/int8").
	Entry string
	// Variant and InputRes split Entry into its parts.
	Variant  string
	InputRes int
	// Precision is the numeric tier the request runs at: PrecisionFP32 or
	// PrecisionInt8. Strict accuracy floors keep bit-identical f32; floors
	// below an int8 twin's measured accuracy get the fast tier.
	Precision string
	// Kernel names the GEMM kernel tier the plan's forwards execute on
	// ("avx2" or "portable", tensor.Kernel*); "reference" marks entries
	// that did not compile and run the serialized reference path. The f32
	// tiers are bit-identical, so Kernel never affects results — it is
	// -explain visibility into what the hardware actually runs.
	Kernel string
	// Accuracy is the effective accuracy the planner's QoS floor was
	// checked against: the entry's measured validation accuracy, minus
	// any decode-fidelity penalties on video plans (deblocking disabled,
	// undersized stored rendition).
	Accuracy float64
	// InputFormat describes the representative input class the plan was
	// selected for (codec and encoded dimensions of the request's first
	// image).
	InputFormat string
	// DecodeScale is the reduced decode factor the joint plan chose for
	// that input class (1 = full-resolution decode).
	DecodeScale int
	// Deblock reports whether the in-loop deblocking filter runs during
	// decode (video requests only; false is the reduced-fidelity fast
	// decode of §6.4). Still-image plans leave it false.
	Deblock bool
	// Stream is the natively-stored rendition the video planner routed the
	// request to: 0 is the primary stream, n > 0 is VideoOpts.Variants[n-1]
	// (the paper's natively-present low-resolution lever). Still-image
	// plans leave it 0.
	Stream int
	// Preproc names the optimized post-decode operator chain.
	Preproc string
	// PredictedThroughput is the calibrated Eq. 4 estimate (im/s) for this
	// plan on the live machine.
	PredictedThroughput float64
	// PredictedLatencyUS is the calibrated worst-case per-image latency
	// estimate.
	PredictedLatencyUS float64
}

func (p ServePlan) String() string {
	prec := p.Precision
	if prec == "" {
		prec = PrecisionFP32
	}
	tier := prec
	if p.Kernel != "" {
		tier += "/" + p.Kernel
	}
	return fmt.Sprintf("%s [%s] on %s: decode 1/%d, %s, predicted %.0f im/s (acc %.3f)",
		p.Entry, tier, p.InputFormat, p.DecodeScale, p.Preproc, p.PredictedThroughput, p.Accuracy)
}

// kernelFor names the GEMM kernel tier an entry's forwards run on: the
// int8 kernel for quantized plans, the active f32 kernel for compiled f32
// plans, and "reference" for the uncompiled serialized path (scalar tensor
// ops, no GEMM dispatch).
func (r *Runtime) kernelFor(ent *rtEntry) string {
	switch {
	case ent.qplan != nil:
		return tensor.Int8KernelName()
	case ent.plan != nil:
		return tensor.F32KernelName()
	default:
		return "reference"
	}
}

// selKey memoizes planner decisions per (input class, QoS) pair.
type selKey struct {
	w, h  int
	codec Codec
	qos   QoS
}

// selection is one memoized planner decision.
type selection struct {
	entry *rtEntry
	plan  ServePlan
}

// maxCachedSelections bounds the planner's memo; beyond it the memo resets
// (selections are cheap to recompute — the expensive parts, calibration
// and ingest-plan compilation, have their own caches).
const maxCachedSelections = 256

// planFor picks the zoo entry for one request: it peeks at the first
// input's header to establish the request's input class, builds the
// calibrated D x F plan space (every zoo entry against that class, each
// with its jointly optimized decode scale and preprocessing chain), and
// selects the best plan under the QoS constraint — the paper's joint
// preprocessing/inference optimization running live inside the serving
// path.
func (r *Runtime) planFor(inputs []MediaInput, qos QoS) (*rtEntry, ServePlan, error) {
	if len(inputs) == 0 {
		// An empty request has no input class to cost and no work to
		// bound: route it by accuracy alone (no calibration, no plan
		// search) so it stays the no-op it always was, while a genuinely
		// unsatisfiable accuracy floor still fails loudly.
		var best *rtEntry
		for _, ent := range r.entries {
			if ent.Accuracy >= qos.MinAccuracy && (best == nil || ent.Accuracy > best.Accuracy) {
				best = ent
			}
		}
		if best == nil {
			return nil, ServePlan{}, fmt.Errorf("smol: no zoo entry meets accuracy floor %v", qos.MinAccuracy)
		}
		return best, ServePlan{Entry: best.name, Variant: best.Variant,
			InputRes: best.InputRes, Precision: best.PrecisionLabel(),
			Kernel: r.kernelFor(best), Accuracy: best.Accuracy, DecodeScale: 1}, nil
	}
	if inputs[0].Codec == CodecVideo {
		return nil, ServePlan{}, fmt.Errorf("smol: video streams are served by ClassifyVideo/EstimateMean, not Classify")
	}
	w, h, err := peekDims(inputs[0])
	if err != nil {
		return nil, ServePlan{}, fmt.Errorf("smol: reading input header: %w", err)
	}
	key := selKey{w: w, h: h, codec: inputs[0].Codec, qos: qos}
	r.selMu.Lock()
	sel, ok := r.sels[key]
	r.selMu.Unlock()
	if ok {
		return sel.entry, sel.plan, nil
	}
	sel, err = r.selectPlan(key)
	if err != nil {
		return nil, ServePlan{}, err
	}
	r.selMu.Lock()
	if len(r.sels) >= maxCachedSelections {
		r.sels = make(map[selKey]selection)
	}
	r.sels[key] = sel
	r.selMu.Unlock()
	return sel.entry, sel.plan, nil
}

// selectPlan runs the calibrated plan search for one (input class, QoS)
// pair and lowers the winner into a ServePlan.
func (r *Runtime) selectPlan(key selKey) (selection, error) {
	env := costmodel.DefaultEnv()
	env.VCPUs = r.workerCount()
	env.BatchSize = r.batchSize()
	env.Calibration = r.calibrate()

	kind := hw.FormatJPEG
	if key.codec == CodecPNG {
		kind = hw.FormatPNG
	}
	format := costmodel.Format{
		Name: fmt.Sprintf("%s %dx%d", key.codec, key.w, key.h),
		Kind: kind, W: key.w, H: key.h, Quality: 90,
	}

	// Build one candidate plan per zoo entry, with the same joint
	// decode-scale + preprocessing optimization the ingest compiler runs,
	// so the predicted plan is the one the runtime will actually execute.
	plans := make([]costmodel.Plan, 0, len(r.entries))
	for _, ent := range r.entries {
		var scales []int
		if key.codec == CodecJPEG && !r.cfg.DisableScaledDecode {
			scales = jpegDecodeScales
		}
		specW, specH := key.w, key.h
		entFormat := format
		if key.codec == CodecJPEG && r.cfg.ROIDecode {
			// The executed ingest plan decodes only the MCU-aligned cover
			// of the central crop; cost the same geometry. The stream's
			// real MCU size is unknown until decode, so assume the
			// worst-case 16px grid (4:2:0) — at most one MCU of slack per
			// edge against what ingestFor will compile.
			_, region := roiGeometry(key.w, key.h, ent.InputRes, 16)
			specW, specH = region.W(), region.H()
			entFormat.ROIFraction = float64(specW*specH) / float64(key.w*key.h)
		}
		spec := preproc.ServeSpec(specW, specH, ent.InputRes, r.cfg.Mean, r.cfg.Std, scales)
		pplan, err := preproc.Optimize(spec)
		if err != nil {
			return selection{}, fmt.Errorf("smol: optimizing preproc for %s: %w", ent.name, err)
		}
		p := costmodel.Plan{
			DNN: costmodel.DNNChoice{
				Name: ent.name, InputRes: ent.InputRes, Accuracy: ent.Accuracy,
			},
			Format: entFormat, Preproc: pplan, PreprocSpec: spec,
		}
		if sc := pplan.DecodeScale(); sc > 1 {
			p.Format.DecodeScale = sc
		}
		plans = append(plans, p)
	}
	evals, err := costmodel.Evaluate(plans, env)
	if err != nil {
		return selection{}, err
	}
	best, err := costmodel.Select(evals, costmodel.Constraint{
		MinAccuracy:  key.qos.MinAccuracy,
		MaxLatencyUS: key.qos.MaxLatencyUS,
	})
	if err != nil {
		return selection{}, fmt.Errorf("smol: no zoo entry satisfies QoS %+v: %w", key.qos, err)
	}
	ent := r.byName[best.Plan.DNN.Name]
	if ent == nil {
		return selection{}, fmt.Errorf("smol: planner chose unknown entry %q", best.Plan.DNN.Name)
	}
	return selection{
		entry: ent,
		plan: ServePlan{
			Entry:               ent.name,
			Variant:             ent.Variant,
			InputRes:            ent.InputRes,
			Precision:           ent.PrecisionLabel(),
			Kernel:              r.kernelFor(ent),
			Accuracy:            ent.Accuracy,
			InputFormat:         format.Name,
			DecodeScale:         best.Plan.Preproc.DecodeScale(),
			Preproc:             best.Plan.Preproc.Describe(),
			PredictedThroughput: best.Throughput,
			PredictedLatencyUS:  best.LatencyUS,
		},
	}, nil
}

// peekDims reads the encoded dimensions from an input's header without
// decoding it. Unknown codecs fail here, at planning time, with the same
// verdict the prep workers would reach later.
func peekDims(in MediaInput) (w, h int, err error) {
	switch in.Codec {
	case CodecJPEG:
		return jpeg.DecodeHeader(in.Data)
	case CodecPNG:
		return spng.DecodeHeader(in.Data)
	case CodecVideo:
		info, err := vid.Probe(in.Data)
		if err != nil {
			return 0, 0, err
		}
		return info.W, info.H, nil
	default:
		return 0, 0, fmt.Errorf("smol: unsupported codec %v", in.Codec)
	}
}

func (r *Runtime) workerCount() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	if r.cfg.Opts.DisableThreading {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

func (r *Runtime) batchSize() int {
	if r.cfg.BatchSize > 0 {
		return r.cfg.BatchSize
	}
	return 32
}

// calibrate measures this machine once per runtime: every zoo entry's real
// per-image forward time (through the same compiled plan serving uses) and
// the ratio of live to modeled CPU preprocessing cost. The planner's
// estimators then rank plans by the hardware they are actually running on
// — the live counterpart of the BENCH_*.json tracking — instead of the
// paper's static testbed profiles.
func (r *Runtime) calibrate() *hw.Calibration {
	r.calOnce.Do(func() {
		cal := &hw.Calibration{
			ExecUS: make(map[string]float64, len(r.entries)),
			Kernel: tensor.F32KernelName(),
		}
		for _, ent := range r.entries {
			cal.ExecUS[ent.name] = r.measureExecUS(ent)
		}
		cal.PreprocScale = r.measurePreprocScale()
		r.cal = cal
	})
	return r.cal
}

// videoCalibrate extends the base calibration with the video decode
// reference measurement, lazily on the first video request so still-only
// servers never pay for it. The write is ordered before every video
// planner's read by the sync.Once.
func (r *Runtime) videoCalibrate() *hw.Calibration {
	cal := r.calibrate()
	r.vidCalOnce.Do(func() {
		cal.VideoScale = r.measureVideoScale()
	})
	return cal
}

// clampScale bounds a measured/modeled cost ratio against pathological
// measurements (debuggers, contended CI machines).
func clampScale(scale float64) float64 {
	if scale < 0.02 {
		return 0.02
	}
	if scale > 50 {
		return 50
	}
	return scale
}

// measureExecUS times one entry's batch forward (best of a few warm runs)
// and returns microseconds per image.
func (r *Runtime) measureExecUS(ent *rtEntry) float64 {
	n := 4
	if bs := r.batchSize(); bs < n {
		n = bs
	}
	x := tensor.New(n, 3, ent.InputRes, ent.InputRes)
	preds := make([]int, n)
	run := func() time.Duration {
		start := time.Now()
		if ent.qplan != nil {
			ent.qplan.PredictInto(x, preds)
		} else if ent.plan != nil {
			ent.plan.PredictInto(x, preds)
		} else {
			ent.execMu.Lock()
			ent.Model.Predict(x)
			ent.execMu.Unlock()
		}
		return time.Since(start)
	}
	run() // warm arenas and layer caches
	best := run()
	if d := run(); d < best {
		best = d
	}
	return best.Seconds() * 1e6 / float64(n)
}

// measurePreprocScale times a fixed reference decode+preprocess workload
// and returns the live/modeled cost ratio.
func (r *Runtime) measurePreprocScale() float64 {
	const refW, refH, refRes = 192, 192, 64
	m := img.New(refW, refH)
	for y := 0; y < refH; y++ {
		for x := 0; x < refW; x++ {
			m.Set(x, y, uint8(x*3), uint8(y*5), uint8((x+y)*2))
		}
	}
	enc := jpeg.Encode(m, jpeg.EncodeOptions{Quality: 90})
	spec := preproc.ServeSpec(refW, refH, refRes, r.cfg.Mean, r.cfg.Std, nil)
	plan, err := preproc.Optimize(spec)
	if err != nil {
		return 1
	}
	ex := preproc.NewExecutor()
	out := tensor.New(3, refRes, refRes)
	run := func() (time.Duration, error) {
		start := time.Now()
		dec, err := jpeg.Decode(enc)
		if err != nil {
			return 0, err
		}
		if err := ex.Execute(plan, dec, out); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if _, err := run(); err != nil { // warm the executor scratch
		return 1
	}
	best, err := run()
	if err != nil {
		return 1
	}
	if d, err := run(); err == nil && d < best {
		best = d
	}
	modeled := hw.DecodeCostUS(hw.DecodeSpec{Format: hw.FormatJPEG, W: refW, H: refH, Quality: 90})
	for _, oc := range preproc.OpCosts(plan, spec) {
		modeled += hw.PostprocCostUS(oc)
	}
	if modeled <= 0 {
		return 1
	}
	return clampScale(best.Seconds() * 1e6 / modeled)
}

// measureVideoScale times a fixed reference vid decode (a short clip with
// real motion, so P-frames exercise compensation and residual coding) and
// returns the live/modeled cost ratio — the video counterpart of
// measurePreprocScale, feeding hw.Calibration.VideoScale.
func (r *Runtime) measureVideoScale() float64 {
	const refW, refH, refFrames, refGOP = 64, 48, 8, 4
	frames := make([]*img.Image, refFrames)
	for f := range frames {
		m := img.New(refW, refH)
		for y := 0; y < refH; y++ {
			for x := 0; x < refW; x++ {
				m.Set(x, y, uint8(x*4), uint8(y*5), uint8((x+y)*2))
			}
		}
		// A moving bright bar gives the encoder real motion to chase.
		for y := refH / 3; y < 2*refH/3; y++ {
			for x := 0; x < refW/8; x++ {
				m.Set((x+f*3)%refW, y, 250, 240, 200)
			}
		}
		frames[f] = m
	}
	enc, err := vid.Encode(frames, vid.EncodeOptions{Quality: 70, GOP: refGOP})
	if err != nil {
		return 1
	}
	var dst *img.Image
	run := func() (time.Duration, error) {
		dec, err := vid.NewDecoder(enc, vid.DecodeOptions{})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for {
			m, err := dec.NextInto(dst)
			if err == vid.ErrEndOfStream {
				break
			}
			if err != nil {
				return 0, err
			}
			dst = m
		}
		return time.Since(start), nil
	}
	if _, err := run(); err != nil { // warm the decoder path
		return 1
	}
	best, err := run()
	if err != nil {
		return 1
	}
	if d, err := run(); err == nil && d < best {
		best = d
	}
	modeled := hw.DecodeCostUS(hw.DecodeSpec{
		Format: hw.FormatVideoH264, W: refW, H: refH, GOP: refGOP,
	}) * refFrames
	if modeled <= 0 {
		return 1
	}
	return clampScale(best.Seconds() * 1e6 / modeled)
}

// Selection-query planning: the verification side reuses the video plan
// search (zoo entry x rendition x deblock under the QoS constraint), then
// every proxy candidate — the blob counter or a qualifying zoo entry, on
// every stored rendition — is costed against that verification plan with
// costmodel.SelectCostUS. A persisted score table zeroes a candidate's
// proxy-pass term, which is how repeat queries converge on the cached
// proxy. Decisions are memoized like video plans, with the set of cached
// tables part of the key (the first query's lazy persist changes the
// arithmetic for the second).

// streamProxy identifies one proxy candidate: a scoring model over one
// stored stream.
type streamProxy struct {
	stream int
	proxy  string
}

// selectSelKey memoizes selection planner decisions.
type selectSelKey struct {
	streams string
	qos     QoS
	stride  int
	mode    DeblockMode
	limit   int
	// conf marks queries with a proxy confidence floor: the planner
	// assumes floor-gated queries prune (selectSelectivityPrior) while
	// floorless queries verify every sampled frame.
	conf bool
	// cached lists the (stream, proxy) score tables persisted for the
	// video at planning time.
	cached string
}

// selectSelection is one memoized selection planner decision.
type selectSelection struct {
	entry    *rtEntry
	choice   videoChoice
	proxyEnt *rtEntry // nil = blob-counter proxy
	plan     SelectPlan
}

// selectSelectivityPrior is the fraction of frames the planner expects to
// survive a nonzero proxy confidence floor. It only shapes predicted cost
// (and through it the proxy choice); execution always verifies the frames
// that actually survive.
const selectSelectivityPrior = 0.1

// planSelect plans one selection query over already-probed stream headers:
// verification entry/rendition/fidelity from the video plan search, proxy
// choice from the joint SelectCostUS ranking. cached names the score
// tables already persisted for this video.
func (r *Runtime) planSelect(infos []vid.Info, qos QoS, stride int, mode DeblockMode, limit int, minConf float64, cached map[streamProxy]bool) (selectSelection, error) {
	if stride < 1 {
		stride = 1
	}
	if limit < 0 {
		limit = 0
	}
	if qos == (QoS{}) {
		qos = r.cfg.QoS
	}
	sig := ""
	for _, info := range infos {
		sig += fmt.Sprintf("%dx%d/g%d/f%d;", info.W, info.H, info.GOP, info.Frames)
	}
	cachedKeys := make([]string, 0, len(cached))
	for sp := range cached {
		cachedKeys = append(cachedKeys, fmt.Sprintf("%d:%s", sp.stream, sp.proxy))
	}
	sort.Strings(cachedKeys)
	key := selectSelKey{
		streams: sig,
		qos:     qos,
		stride:  stride,
		mode:    mode,
		limit:   limit,
		conf:    minConf > 0,
		cached:  strings.Join(cachedKeys, ","),
	}
	r.selMu.Lock()
	sel, ok := r.selectSels[key]
	r.selMu.Unlock()
	if ok {
		return sel, nil
	}
	sel, err := r.selectSelectPlan(infos, qos, stride, mode, limit, minConf, cached)
	if err != nil {
		return selectSelection{}, err
	}
	r.selMu.Lock()
	if len(r.selectSels) >= maxCachedSelections {
		r.selectSels = make(map[selectSelKey]selectSelection)
	}
	r.selectSels[key] = sel
	r.selMu.Unlock()
	return sel, nil
}

// selectSelectPlan runs the candidate enumeration for one memoized
// selection planning class.
func (r *Runtime) selectSelectPlan(infos []vid.Info, qos QoS, stride int, mode DeblockMode, limit int, minConf float64, cached map[streamProxy]bool) (selectSelection, error) {
	// Verification plan: the same joint search every video request runs,
	// so the cascade and the DisableProxyCascade full-scan oracle verify
	// with an identical entry, rendition, and decode fidelity.
	seek := !r.cfg.DisableGOPSeek
	ent, choice, vplan, err := r.planVideoInfos(infos, qos, stride, mode, seek)
	if err != nil {
		return selectSelection{}, err
	}
	env := costmodel.DefaultEnv()
	env.VCPUs = r.workerCount()
	env.BatchSize = r.batchSize()
	env.Calibration = r.videoCalibrate()

	verifyCosts, err := r.selectStageCosts(ent, infos[choice.stream], choice.stream, !choice.deblock, true, env)
	if err != nil {
		return selectSelection{}, err
	}
	verifyUS := verifyCosts.DecodeUS + verifyCosts.CPUPostUS + verifyCosts.AccelPostUS + verifyCosts.ExecUS

	selectivity := 1.0
	if minConf > 0 {
		selectivity = selectSelectivityPrior
	}
	cpuScale, videoScale := 1.0, 1.0
	if env.Calibration != nil {
		cpuScale = env.Calibration.CPUScale()
		videoScale = env.Calibration.VideoCPUScale()
	}

	best := selectSelection{}
	bestCost := math.Inf(1)
	consider := func(sp streamProxy, proxyEnt *rtEntry, proxyUS float64) {
		if cached[sp] {
			// A persisted score table makes the whole proxy pass free.
			proxyUS = 0
		}
		spec := costmodel.SelectSpec{
			Frames:      infos[sp.stream].Frames,
			ProxyUS:     proxyUS,
			VerifyUS:    verifyUS,
			Selectivity: selectivity,
			Limit:       limit,
		}
		cost := costmodel.SelectCostUS(spec)
		if cost >= bestCost {
			return
		}
		bestCost = cost
		best = selectSelection{
			entry:    ent,
			choice:   choice,
			proxyEnt: proxyEnt,
			plan: SelectPlan{
				Proxy:                  sp.proxy,
				ProxyStream:            sp.stream,
				ProxyCached:            cached[sp],
				Verify:                 vplan,
				PredictedVerifications: costmodel.ExpectedVerifications(spec),
				PredictedCostUS:        cost,
			},
		}
	}
	for si, info := range infos {
		// The blob counter: a sequential full-fidelity decode plus the
		// flood-fill pass, per frame.
		decodeUS := hw.DecodeCostUS(hw.DecodeSpec{
			Format:  hw.FormatVideoH264,
			W:       info.W,
			H:       info.H,
			Quality: info.Quality,
			GOP:     info.GOP,
		}) * videoScale
		blobUS := decodeUS + hw.BlobProxyCostUS(info.W, info.H)*cpuScale
		consider(streamProxy{si, blazeit.BlobProxyName}, nil, blobUS)

		// Zoo-entry proxies: any entry whose execution is strictly cheaper
		// than the verification entry's qualifies (a proxy that costs as
		// much as its oracle prunes nothing worth having). Int8 twins win
		// here on exec cost, matching the cascade intent: cheap quantized
		// scoring, full-precision verification.
		for _, pe := range r.entries {
			costs, err := r.selectStageCosts(pe, info, si, false, false, env)
			if err != nil {
				continue
			}
			if costs.ExecUS >= verifyCosts.ExecUS {
				continue
			}
			proxyUS := costs.DecodeUS + costs.CPUPostUS + costs.AccelPostUS + costs.ExecUS
			consider(streamProxy{si, pe.name}, pe, proxyUS)
		}
	}
	if math.IsInf(bestCost, 1) {
		return selectSelection{}, fmt.Errorf("smol: no selection plan found")
	}
	return best, nil
}

// selectStageCosts prices one (entry, stream) pairing per frame: decode at
// the stream's geometry, the jointly optimized preprocessing chain, and
// the calibrated execution cost. GOP-seek plans cap the decode term at one
// GOP prefix per sample (verification); sequential plans pay the full
// per-frame decode (proxy pass).
func (r *Runtime) selectStageCosts(ent *rtEntry, info vid.Info, stream int, noDeblock, gopSeek bool, env costmodel.Env) (costmodel.StageCosts, error) {
	spec := preproc.ServeSpec(info.W, info.H, ent.InputRes, r.cfg.Mean, r.cfg.Std, nil)
	pplan, err := preproc.Optimize(spec)
	if err != nil {
		return costmodel.StageCosts{}, err
	}
	fps := 1
	if gopSeek {
		// Verification seeks: a sampled frame costs its GOP prefix. The
		// cost model caps the FramesPerSample term under GOPSeek, so pass
		// the GOP interval as the span.
		fps = info.GOP
		if fps < 1 {
			fps = 1
		}
	}
	return costmodel.Costs(costmodel.Plan{
		DNN: costmodel.DNNChoice{Name: ent.name, InputRes: ent.InputRes, Accuracy: ent.Accuracy},
		Format: costmodel.Format{
			Name:            fmt.Sprintf("svid#%d %dx%d", stream, info.W, info.H),
			Kind:            hw.FormatVideoH264,
			W:               info.W,
			H:               info.H,
			NoDeblock:       noDeblock,
			GOP:             info.GOP,
			FramesPerSample: fps,
			GOPSeek:         gopSeek,
		},
		Preproc: pplan, PreprocSpec: spec,
	}, env)
}
