package smol

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"smol/internal/blazeit"
	"smol/internal/codec/vid"
	"smol/internal/engine"
	"smol/internal/img"
	"smol/internal/store"
)

// SelectOpts describes a BlazeIt-style LIMIT selection query: "the first
// Limit frames where the model says Class", restricted to frames whose
// proxy class confidence is at least MinConf.
type SelectOpts struct {
	// Class is the predicted class a frame must have to match.
	Class int
	// MinConf, in [0, 1], is the proxy confidence floor: sampled frames
	// whose proxy class score falls below it are excluded from the query's
	// result outright (and, in the cascade, never decoded or verified).
	// Zero keeps every sampled frame eligible.
	MinConf float64
	// Limit caps the number of returned frames (0 = all matching frames).
	// Matches are kept in descending proxy-confidence order, so the
	// cascade's early termination and the full-scan oracle agree on which
	// Limit frames win.
	Limit int
	// Stride samples every Stride-th frame (0 or 1 = every frame).
	Stride int
	// QoS constrains the verification plan (zero = the runtime default).
	QoS QoS
	// Deblock forces the verification decode fidelity (default DeblockAuto).
	Deblock DeblockMode
}

// SelectPlan describes the chosen two-stage cascade.
type SelectPlan struct {
	// Proxy names the stage-1 scoring model: blazeit.BlobProxyName or a
	// zoo entry name.
	Proxy string
	// ProxyStream is the rendition the proxy scores.
	ProxyStream int
	// ProxyCached reports that a persisted score table made the proxy pass
	// free at planning time.
	ProxyCached bool
	// Verify is the stage-2 verification plan (entry, rendition, decode
	// fidelity) — the same plan the full-scan oracle uses.
	Verify ServePlan
	// PredictedVerifications is the planner's estimate of stage-2 work.
	PredictedVerifications float64
	// PredictedCostUS is the modeled whole-query cost (costmodel.SelectCostUS).
	PredictedCostUS float64
}

func (p SelectPlan) String() string {
	cached := ""
	if p.ProxyCached {
		cached = ", cached"
	}
	return fmt.Sprintf("proxy %s on stream %d%s -> verify [%s] (~%.0f verifications, ~%.0fus)",
		p.Proxy, p.ProxyStream, cached, p.Verify, p.PredictedVerifications, p.PredictedCostUS)
}

// SelectResult reports a selection query's answer and its cost counters.
type SelectResult struct {
	// Frames are the matching frame indices, ascending. With Limit set
	// they are the Limit highest-proxy-confidence matches.
	Frames []int
	// Scores are the proxy class confidences of Frames, index-aligned.
	Scores []float64
	// ProxyInvocations counts stage-1 proxy scorings this query ran (0
	// when a persisted score table answered the proxy pass).
	ProxyInvocations int
	// OracleInvocations counts stage-2 full-model verifications — the
	// cost the cascade exists to minimize.
	OracleInvocations int
	// GOPsTouched counts the distinct GOPs the verification stage decoded
	// from; GOPsTotal is the chosen stream's GOP count. Their ratio is the
	// predicate pushdown: GOPs whose proxy score bound falls below MinConf
	// are never touched.
	GOPsTouched int
	GOPsTotal   int
	// ScoresCached reports that the proxy scores came from a persisted
	// score table rather than a live pass.
	ScoresCached bool
	// Plan is the cascade the planner chose.
	Plan SelectPlan
	// Stats aggregates the engine-side work across the query's pipeline
	// submissions.
	Stats engine.Stats
	// Decode aggregates the decoder work across the proxy pass (if live)
	// and the verification stage.
	Decode VideoDecodeStats
}

// SelectVideo answers a selection query from the media store with a
// two-stage proxy cascade. Stage 1 scores every frame with a cheap proxy —
// from a persisted score table when one exists, otherwise by one live pass
// over the planner's chosen rendition (persisted afterwards, so repeat
// queries skip it). Stage 2 ranks the frames that survive MinConf by proxy
// confidence and verifies them through the warm engine in batches,
// descending, seeking only the GOPs the candidates live in and stopping as
// soon as Limit frames are confirmed — decode and inference work scale
// with Limit and proxy selectivity, not stream length.
//
// With RuntimeConfig.DisableProxyCascade (or DisableGOPSeek, which removes
// the index the cascade seeks with) the query verifies every sampled frame
// sequentially instead. That path is the equivalence oracle: it returns
// exactly the same frame set, because matching is defined by the same
// deterministic predicate and ordering in both paths.
func (s *Server) SelectVideo(ctx context.Context, v *StoredVideo, opts SelectOpts) (SelectResult, error) {
	if v == nil || v.v == nil {
		return SelectResult{}, fmt.Errorf("smol: nil stored video")
	}
	if opts.Class < 0 {
		return SelectResult{}, fmt.Errorf("smol: negative selection class %d", opts.Class)
	}
	if opts.MinConf < 0 || opts.MinConf > 1 {
		return SelectResult{}, fmt.Errorf("smol: selection confidence floor %g outside [0, 1]", opts.MinConf)
	}
	stride := opts.Stride
	if stride < 1 {
		stride = 1
	}
	streams := v.v.Streams()
	infos := make([]vid.Info, len(streams))
	for i, str := range streams {
		infos[i] = str.Info
	}
	cached := make(map[streamProxy]bool)
	if v.st != nil {
		for _, ref := range v.st.ScoredProxies(v.v.Name) {
			cached[streamProxy{stream: ref.Stream, proxy: ref.Proxy}] = true
		}
	}
	sel, err := s.rt.planSelect(infos, opts.QoS, stride, opts.Deblock, opts.Limit, opts.MinConf, cached)
	if err != nil {
		return SelectResult{}, err
	}
	verifyStr := streams[sel.choice.stream]
	res := SelectResult{
		Plan:      sel.plan,
		GOPsTotal: len(verifyStr.Index),
	}
	raw, gmin, gmax, err := s.proxyScores(ctx, v, streams[sel.plan.ProxyStream], sel, &res)
	if err != nil {
		return SelectResult{}, err
	}
	decOpts := vid.DecodeOptions{DisableDeblock: !sel.choice.deblock}
	var matched []blazeit.Candidate
	if s.rt.cfg.DisableProxyCascade || s.rt.cfg.DisableGOPSeek {
		matched, err = s.selectFullScan(ctx, verifyStr, sel.entry, decOpts, raw, stride, opts, &res)
	} else {
		cands := selectCandidates(raw, gmin, gmax, verifyStr.Index, stride, opts.Class, opts.MinConf)
		blazeit.RankCandidates(cands)
		matched, err = s.selectCascade(ctx, verifyStr, sel.entry, decOpts, cands, opts, &res)
	}
	if err != nil {
		return SelectResult{}, err
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].Frame < matched[j].Frame })
	res.Frames = make([]int, len(matched))
	res.Scores = make([]float64, len(matched))
	for i, c := range matched {
		res.Frames[i] = c.Frame
		res.Scores[i] = c.Score
	}
	return res, nil
}

// proxyScores obtains the raw proxy scores and per-GOP summaries for the
// planned proxy: from the persisted score table when one exists, otherwise
// by a live pass that is then persisted best-effort (the table is pure
// acceleration state — a failed persist only costs the next query a
// re-score).
func (s *Server) proxyScores(ctx context.Context, v *StoredVideo, str store.Stream, sel selectSelection, res *SelectResult) (raw, gmin, gmax []float64, err error) {
	if v.st != nil {
		if t, ok := v.st.Scores(v.v.Name, sel.plan.ProxyStream, sel.plan.Proxy); ok {
			res.ScoresCached = true
			return t.Frames, t.GOPMin, t.GOPMax, nil
		}
	}
	if sel.proxyEnt == nil {
		var dstats vid.DecodeStats
		raw, dstats, err = store.BlobScores(str)
		if err != nil {
			return nil, nil, nil, err
		}
		res.Decode.Add(dstats)
	} else {
		// A zoo-entry proxy scores by classifying every frame through the
		// warm engine; the raw score is the predicted class.
		dec, derr := vid.NewDecoder(str.Data, vid.DecodeOptions{})
		if derr != nil {
			return nil, nil, nil, derr
		}
		vres, cerr := s.classifySequential(ctx, dec, sel.proxyEnt, ServePlan{}, 1, false)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		raw = make([]float64, len(vres.Predictions))
		for i, p := range vres.Predictions {
			raw[i] = float64(p)
		}
		res.Decode.Add(vres.Decode)
		addEngineStats(&res.Stats, vres.Stats)
	}
	res.ProxyInvocations = len(raw)
	if v.st != nil {
		if t, perr := v.st.PutScores(v.v.Name, sel.plan.ProxyStream, sel.plan.Proxy, raw); perr == nil {
			return t.Frames, t.GOPMin, t.GOPMax, nil
		}
	}
	gmin, gmax = gopScoreBounds(raw, str.Index)
	return raw, gmin, gmax, nil
}

// gopScoreBounds computes per-GOP raw score ranges for a live pass whose
// persist did not go through.
func gopScoreBounds(raw []float64, index []vid.GOPEntry) (gmin, gmax []float64) {
	gmin = make([]float64, len(index))
	gmax = make([]float64, len(index))
	for g, e := range index {
		lo, hi := raw[e.FirstFrame], raw[e.FirstFrame]
		for f := e.FirstFrame + 1; f < e.FirstFrame+e.Frames; f++ {
			if raw[f] < lo {
				lo = raw[f]
			}
			if raw[f] > hi {
				hi = raw[f]
			}
		}
		gmin[g], gmax[g] = lo, hi
	}
	return gmin, gmax
}

// selectCandidates collects the sampled frames surviving the proxy
// confidence floor, GOP by GOP: a GOP whose raw score range bounds every
// frame's class confidence below the floor is skipped without touching its
// per-frame scores — the in-memory mirror of the pushdown the verification
// stage applies to decode work.
func selectCandidates(raw, gmin, gmax []float64, index []vid.GOPEntry, stride, class int, minConf float64) []blazeit.Candidate {
	var cands []blazeit.Candidate
	for g, e := range index {
		if blazeit.ClassScoreBound(gmin[g], gmax[g], class) < minConf {
			continue
		}
		first := ((e.FirstFrame + stride - 1) / stride) * stride
		for f := first; f < e.FirstFrame+e.Frames; f += stride {
			if sc := blazeit.ClassScore(raw[f], class); sc >= minConf {
				cands = append(cands, blazeit.Candidate{Frame: f, Score: sc})
			}
		}
	}
	return cands
}

// selectVerifier decodes ranked candidates for verification: one resident
// decoder armed with the stream's GOP index, seeking straight to each
// candidate's GOP prefix. Ownership of each decoded image transfers to the
// request (the prep worker recycles it into framePool), and a warm
// verifier allocates nothing.
type selectVerifier struct {
	dec *vid.Decoder
	cr  *classifyReq
}

//smol:owns
//smol:noalloc
func (v *selectVerifier) decodeCandidate(slot, frame int) error {
	if err := v.dec.SeekFrame(frame); err != nil {
		return err
	}
	dst, _ := v.cr.framePool.Get().(*img.Image)
	m, err := v.dec.NextInto(dst)
	if err != nil {
		//smol:coldpath decode failure returns the pooled frame
		if dst != nil {
			v.cr.framePool.Put(dst)
		}
		return err
	}
	v.cr.frames[slot] = m
	return nil
}

// selectCascade is stage 2: verify ranked candidates through the warm
// engine in batches, descending by proxy confidence, decoding only the
// GOPs the candidates live in, until Limit frames are confirmed. Confirmed
// candidates accumulate in rank order, so truncating to Limit yields
// exactly the top-K the full-scan oracle would return.
func (s *Server) selectCascade(ctx context.Context, str store.Stream, ent *rtEntry, decOpts vid.DecodeOptions, cands []blazeit.Candidate, opts SelectOpts, res *SelectResult) ([]blazeit.Candidate, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	dec, err := vid.NewDecoder(str.Data, decOpts)
	if err != nil {
		return nil, err
	}
	if err := dec.SetGOPIndex(str.Index); err != nil {
		return nil, err
	}
	batch := s.rt.selectVerifyBatch()
	cr := &classifyReq{
		frames:    make([]*img.Image, batch),
		framePool: &sync.Pool{},
		preds:     make([]int, batch),
		entry:     ent,
	}
	ver := &selectVerifier{dec: dec, cr: cr}
	touched := make([]bool, len(str.Index))
	jobs := make([]engine.Job, 0, batch)
	var confirmed []blazeit.Candidate
	for start := 0; start < len(cands); start += batch {
		end := start + batch
		if end > len(cands) {
			end = len(cands)
		}
		jobs = jobs[:0]
		for i, c := range cands[start:end] {
			if err := ver.decodeCandidate(i, c.Frame); err != nil {
				return nil, err
			}
			if g := gopOf(str.Index, c.Frame); !touched[g] {
				touched[g] = true
				res.GOPsTouched++
			}
			jobs = append(jobs, engine.Job{Index: i, Tag: cr, Class: ent.class})
		}
		stats, err := s.pipe.Process(ctx, engine.SliceSource(jobs))
		if err != nil {
			return nil, err
		}
		addEngineStats(&res.Stats, stats)
		res.OracleInvocations += len(jobs)
		for i := range jobs {
			if cr.preds[i] == opts.Class {
				confirmed = append(confirmed, cands[start+i])
			}
		}
		if opts.Limit > 0 && len(confirmed) >= opts.Limit {
			break
		}
	}
	if opts.Limit > 0 && len(confirmed) > opts.Limit {
		confirmed = confirmed[:opts.Limit]
	}
	res.Decode.Add(dec.Stats())
	return confirmed, nil
}

// selectFullScan is the equivalence oracle: verify every sampled frame
// with the chosen entry, then apply the same predicate (proxy confidence
// floor + predicted class) and the same descending-confidence top-K the
// cascade uses. It decodes the whole stream (or seeks sample by sample
// when the GOP index is enabled) and invokes the full model once per
// sampled frame, which is exactly the work the cascade avoids.
func (s *Server) selectFullScan(ctx context.Context, str store.Stream, ent *rtEntry, decOpts vid.DecodeOptions, raw []float64, stride int, opts SelectOpts, res *SelectResult) ([]blazeit.Candidate, error) {
	seek := !s.rt.cfg.DisableGOPSeek
	dec, err := vid.NewDecoder(str.Data, decOpts)
	if err != nil {
		return nil, err
	}
	if seek {
		if err := dec.SetGOPIndex(str.Index); err != nil {
			return nil, err
		}
	}
	vres, err := s.classifySequential(ctx, dec, ent, ServePlan{}, stride, seek)
	if err != nil {
		return nil, err
	}
	addEngineStats(&res.Stats, vres.Stats)
	res.Decode.Add(vres.Decode)
	res.OracleInvocations += len(vres.Predictions)
	if n := len(vres.Predictions); n > 0 {
		last := (n - 1) * stride
		if seek {
			// Seeking touches each sample's GOP; samples are ascending, so
			// distinct GOPs are the transitions.
			prev := -1
			for i := 0; i < n; i++ {
				if g := gopOf(str.Index, i*stride); g != prev {
					res.GOPsTouched++
					prev = g
				}
			}
		} else {
			// Sequential decode enters every GOP up to the last sample.
			res.GOPsTouched += gopOf(str.Index, last) + 1
		}
	}
	var matched []blazeit.Candidate
	for i, p := range vres.Predictions {
		f := i * stride
		if p != opts.Class {
			continue
		}
		if sc := blazeit.ClassScore(raw[f], opts.Class); sc >= opts.MinConf {
			matched = append(matched, blazeit.Candidate{Frame: f, Score: sc})
		}
	}
	blazeit.RankCandidates(matched)
	if opts.Limit > 0 && len(matched) > opts.Limit {
		matched = matched[:opts.Limit]
	}
	return matched, nil
}

// gopOf locates the GOP containing frame f in a contiguous GOP index.
func gopOf(index []vid.GOPEntry, f int) int {
	return sort.Search(len(index), func(g int) bool {
		return index[g].FirstFrame+index[g].Frames > f
	})
}

// addEngineStats merges one pipeline submission's stats into a query-level
// aggregate: batch and image counts add, latencies combine (weighted mean,
// max of max), and the pipeline-lifetime counters keep the latest snapshot.
func addEngineStats(dst *engine.Stats, s engine.Stats) {
	if total := dst.Images + s.Images; total > 0 {
		dst.MeanLatency = time.Duration(
			(int64(dst.MeanLatency)*int64(dst.Images) + int64(s.MeanLatency)*int64(s.Images)) / int64(total))
	}
	dst.Images += s.Images
	dst.Batches += s.Batches
	dst.Elapsed += s.Elapsed
	if s.MaxLatency > dst.MaxLatency {
		dst.MaxLatency = s.MaxLatency
	}
	dst.QueueFullStalls = s.QueueFullStalls
	dst.PoolAllocs = s.PoolAllocs
	dst.PoolReuses = s.PoolReuses
	if dst.Elapsed > 0 {
		dst.Throughput = float64(dst.Images) / dst.Elapsed.Seconds()
	}
}
