package smol

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"smol/internal/nn"
)

// Precision tags for zoo entries. The empty string means full precision
// (pre-int8 zoos and hand-built entries keep working unchanged).
const (
	PrecisionFP32 = "fp32"
	PrecisionInt8 = "int8"
)

// ZooEntry is one trained (variant, input resolution) model in a zoo,
// together with its measured validation accuracy. The serving planner
// trades that accuracy against the entry's measured execution cost, so an
// entry without a real accuracy measurement (Accuracy 0) is only ever
// selected by unconstrained max-throughput requests.
type ZooEntry struct {
	// Variant is the nn variant name ("resnet-a" etc.), or any label for
	// custom models.
	Variant string
	// InputRes is the square input resolution this entry runs at.
	InputRes int
	// Accuracy is the validation accuracy measured after training, in [0,1].
	// For int8 entries this is the quantized plan's own measured held-out
	// accuracy (capped strictly below the parent f32 entry's, so an exact
	// accuracy floor on the f32 number never legally selects the int8 tier).
	Accuracy float64
	// Model holds the trained weights. Int8 entries keep the f32 weights
	// too: per-channel weight scales are recomputed deterministically from
	// them at load, so only activation scales need persisting.
	Model *nn.Model
	// Config is the architecture description (needed to serialize).
	Config nn.ResNetConfig
	// Precision is "" or PrecisionFP32 for full precision, PrecisionInt8
	// for a quantized entry.
	Precision string
	// Calib holds an int8 entry's activation scales (unused otherwise).
	Calib nn.QuantCalibration
}

// Int8 reports whether the entry serves through the quantized plan.
func (e ZooEntry) Int8() bool { return e.Precision == PrecisionInt8 }

// PrecisionLabel returns the entry's precision tag, with the legacy empty
// value normalized to PrecisionFP32.
func (e ZooEntry) PrecisionLabel() string {
	if e.Int8() {
		return PrecisionInt8
	}
	return PrecisionFP32
}

// Name identifies the entry inside its zoo: "variant@res", with a "/int8"
// suffix on quantized entries so both precisions of one model coexist.
func (e ZooEntry) Name() string {
	if e.Int8() {
		return fmt.Sprintf("%s@%d/int8", e.Variant, e.InputRes)
	}
	return fmt.Sprintf("%s@%d", e.Variant, e.InputRes)
}

// Zoo is a registry of trained model entries a serving planner chooses
// among: the same task served by several (variant, input resolution)
// points on the accuracy/throughput trade-off. Build one with NewZoo+Add
// (or TrainZoo), then hand it to NewZooRuntime.
type Zoo struct {
	entries []ZooEntry
}

// NewZoo returns an empty zoo.
func NewZoo() *Zoo { return &Zoo{} }

// Add registers an entry. Entries must have distinct (variant, resolution)
// names.
func (z *Zoo) Add(e ZooEntry) error {
	if e.Model == nil {
		return fmt.Errorf("smol: zoo entry %s has no model", e.Name())
	}
	if e.InputRes <= 0 {
		return fmt.Errorf("smol: zoo entry %q has invalid input resolution %d", e.Variant, e.InputRes)
	}
	if e.Accuracy < 0 || e.Accuracy > 1 {
		return fmt.Errorf("smol: zoo entry %s accuracy %v outside [0,1]", e.Name(), e.Accuracy)
	}
	if e.Int8() && (len(e.Calib.ActScales) == 0 || e.Calib.InputScale <= 0) {
		return fmt.Errorf("smol: int8 zoo entry %s has no activation calibration", e.Name())
	}
	for _, ex := range z.entries {
		if ex.Name() == e.Name() {
			return fmt.Errorf("smol: duplicate zoo entry %s", e.Name())
		}
	}
	z.entries = append(z.entries, e)
	return nil
}

// AddClassifier registers a trained classifier under a variant label with
// its measured validation accuracy.
func (z *Zoo) AddClassifier(c *Classifier, variant string, accuracy float64) error {
	if c == nil {
		return fmt.Errorf("smol: nil classifier")
	}
	return z.Add(ZooEntry{
		Variant: variant, InputRes: c.InputRes, Accuracy: accuracy,
		Model: c.Model, Config: c.Config,
	})
}

// Len reports how many entries the zoo holds.
func (z *Zoo) Len() int { return len(z.entries) }

// Entries returns a copy of the registry in insertion order.
func (z *Zoo) Entries() []ZooEntry { return append([]ZooEntry(nil), z.entries...) }

// Best returns the highest-accuracy entry (ties keep the earlier entry).
func (z *Zoo) Best() (ZooEntry, bool) {
	if len(z.entries) == 0 {
		return ZooEntry{}, false
	}
	best := z.entries[0]
	for _, e := range z.entries[1:] {
		if e.Accuracy > best.Accuracy {
			best = e
		}
	}
	return best, true
}

// savedZoo is the gob wire format: each entry is an independent
// nn.SaveModelMeta blob, so the zoo format inherits the model format's
// compatibility behavior.
type savedZoo struct {
	Blobs [][]byte
}

// Save serializes the zoo (weights, architectures, variant names, measured
// accuracies).
func (z *Zoo) Save(w io.Writer) error {
	var sz savedZoo
	for _, e := range z.entries {
		var buf bytes.Buffer
		meta := nn.ModelMeta{
			Variant: e.Variant, Accuracy: e.Accuracy,
			Precision: e.Precision, Calib: e.Calib,
		}
		if err := nn.SaveModelMeta(&buf, e.Config, meta, e.Model); err != nil {
			return fmt.Errorf("smol: saving zoo entry %s: %w", e.Name(), err)
		}
		sz.Blobs = append(sz.Blobs, buf.Bytes())
	}
	return gob.NewEncoder(w).Encode(&sz)
}

// LoadZoo reads a zoo saved with Save.
func LoadZoo(r io.Reader) (*Zoo, error) {
	var sz savedZoo
	if err := gob.NewDecoder(r).Decode(&sz); err != nil {
		return nil, fmt.Errorf("smol: decoding zoo: %w", err)
	}
	z := NewZoo()
	for i, blob := range sz.Blobs {
		cfg, meta, m, err := nn.LoadModelMeta(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("smol: zoo entry %d: %w", i, err)
		}
		variant := meta.Variant
		if variant == "" {
			variant = fmt.Sprintf("model-%d", i)
		}
		if err := z.Add(ZooEntry{
			Variant: variant, InputRes: cfg.InputRes, Accuracy: meta.Accuracy,
			Model: m, Config: cfg,
			Precision: meta.Precision, Calib: meta.Calib,
		}); err != nil {
			return nil, err
		}
	}
	return z, nil
}
