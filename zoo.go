package smol

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"smol/internal/nn"
)

// ZooEntry is one trained (variant, input resolution) model in a zoo,
// together with its measured validation accuracy. The serving planner
// trades that accuracy against the entry's measured execution cost, so an
// entry without a real accuracy measurement (Accuracy 0) is only ever
// selected by unconstrained max-throughput requests.
type ZooEntry struct {
	// Variant is the nn variant name ("resnet-a" etc.), or any label for
	// custom models.
	Variant string
	// InputRes is the square input resolution this entry runs at.
	InputRes int
	// Accuracy is the validation accuracy measured after training, in [0,1].
	Accuracy float64
	// Model holds the trained weights.
	Model *nn.Model
	// Config is the architecture description (needed to serialize).
	Config nn.ResNetConfig
}

// Name identifies the entry inside its zoo: "variant@res".
func (e ZooEntry) Name() string { return fmt.Sprintf("%s@%d", e.Variant, e.InputRes) }

// Zoo is a registry of trained model entries a serving planner chooses
// among: the same task served by several (variant, input resolution)
// points on the accuracy/throughput trade-off. Build one with NewZoo+Add
// (or TrainZoo), then hand it to NewZooRuntime.
type Zoo struct {
	entries []ZooEntry
}

// NewZoo returns an empty zoo.
func NewZoo() *Zoo { return &Zoo{} }

// Add registers an entry. Entries must have distinct (variant, resolution)
// names.
func (z *Zoo) Add(e ZooEntry) error {
	if e.Model == nil {
		return fmt.Errorf("smol: zoo entry %s has no model", e.Name())
	}
	if e.InputRes <= 0 {
		return fmt.Errorf("smol: zoo entry %q has invalid input resolution %d", e.Variant, e.InputRes)
	}
	if e.Accuracy < 0 || e.Accuracy > 1 {
		return fmt.Errorf("smol: zoo entry %s accuracy %v outside [0,1]", e.Name(), e.Accuracy)
	}
	for _, ex := range z.entries {
		if ex.Name() == e.Name() {
			return fmt.Errorf("smol: duplicate zoo entry %s", e.Name())
		}
	}
	z.entries = append(z.entries, e)
	return nil
}

// AddClassifier registers a trained classifier under a variant label with
// its measured validation accuracy.
func (z *Zoo) AddClassifier(c *Classifier, variant string, accuracy float64) error {
	if c == nil {
		return fmt.Errorf("smol: nil classifier")
	}
	return z.Add(ZooEntry{
		Variant: variant, InputRes: c.InputRes, Accuracy: accuracy,
		Model: c.Model, Config: c.Config,
	})
}

// Len reports how many entries the zoo holds.
func (z *Zoo) Len() int { return len(z.entries) }

// Entries returns a copy of the registry in insertion order.
func (z *Zoo) Entries() []ZooEntry { return append([]ZooEntry(nil), z.entries...) }

// Best returns the highest-accuracy entry (ties keep the earlier entry).
func (z *Zoo) Best() (ZooEntry, bool) {
	if len(z.entries) == 0 {
		return ZooEntry{}, false
	}
	best := z.entries[0]
	for _, e := range z.entries[1:] {
		if e.Accuracy > best.Accuracy {
			best = e
		}
	}
	return best, true
}

// savedZoo is the gob wire format: each entry is an independent
// nn.SaveModelMeta blob, so the zoo format inherits the model format's
// compatibility behavior.
type savedZoo struct {
	Blobs [][]byte
}

// Save serializes the zoo (weights, architectures, variant names, measured
// accuracies).
func (z *Zoo) Save(w io.Writer) error {
	var sz savedZoo
	for _, e := range z.entries {
		var buf bytes.Buffer
		meta := nn.ModelMeta{Variant: e.Variant, Accuracy: e.Accuracy}
		if err := nn.SaveModelMeta(&buf, e.Config, meta, e.Model); err != nil {
			return fmt.Errorf("smol: saving zoo entry %s: %w", e.Name(), err)
		}
		sz.Blobs = append(sz.Blobs, buf.Bytes())
	}
	return gob.NewEncoder(w).Encode(&sz)
}

// LoadZoo reads a zoo saved with Save.
func LoadZoo(r io.Reader) (*Zoo, error) {
	var sz savedZoo
	if err := gob.NewDecoder(r).Decode(&sz); err != nil {
		return nil, fmt.Errorf("smol: decoding zoo: %w", err)
	}
	z := NewZoo()
	for i, blob := range sz.Blobs {
		cfg, meta, m, err := nn.LoadModelMeta(bytes.NewReader(blob))
		if err != nil {
			return nil, fmt.Errorf("smol: zoo entry %d: %w", i, err)
		}
		variant := meta.Variant
		if variant == "" {
			variant = fmt.Sprintf("model-%d", i)
		}
		if err := z.Add(ZooEntry{
			Variant: variant, InputRes: cfg.InputRes, Accuracy: meta.Accuracy,
			Model: m, Config: cfg,
		}); err != nil {
			return nil, err
		}
	}
	return z, nil
}
