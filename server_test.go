package smol

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestServerConcurrentClassify: several simultaneous Classify calls must
// share one warm engine and each get back exactly its own predictions —
// the acceptance scenario for the streaming serving mode.
func TestServerConcurrentClassify(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]EncodedImage, len(test))
	for i, li := range test {
		inputs[i] = EncodedImage{Data: EncodeJPEG(li.Image, 95)}
	}
	// Reference predictions from the one-shot path.
	ref, err := rt.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const callers = 3
	var wg sync.WaitGroup
	results := make([]ClassifyResult, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each caller classifies a distinct rotation of the test set so
			// cross-request routing mistakes cannot cancel out.
			rot := make([]EncodedImage, len(inputs))
			for i := range inputs {
				rot[i] = inputs[(i+c)%len(inputs)]
			}
			results[c], errs[c] = srv.Classify(context.Background(), rot)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if len(results[c].Predictions) != len(inputs) {
			t.Fatalf("caller %d: %d predictions", c, len(results[c].Predictions))
		}
		for i, p := range results[c].Predictions {
			if want := ref.Predictions[(i+c)%len(inputs)]; p != want {
				t.Fatalf("caller %d slot %d: predicted %d, one-shot says %d", c, i, p, want)
			}
		}
	}
	// A warm follow-up request must reuse pooled buffers from the earlier
	// traffic rather than allocating a fresh pipeline.
	again, err := srv.Classify(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.PoolReuses == 0 {
		t.Fatal("warm server shows no buffer reuse")
	}
}

// TestServerCancellation: cancelling a Classify must return promptly with
// the context error and leave the server healthy for later requests.
func TestServerCancellation(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A large request so cancellation lands mid-stream.
	big := make([]EncodedImage, 5000)
	enc := EncodeJPEG(test[0].Image, 95)
	for i := range big {
		big[i] = EncodedImage{Data: enc}
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Classify(ctx, big)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Classify returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Classify did not return (deadlock)")
	}

	// The server survives and still produces correct-shaped results.
	small := big[:16]
	res, err := srv.Classify(context.Background(), small)
	if err != nil {
		t.Fatalf("request after cancellation: %v", err)
	}
	if len(res.Predictions) != len(small) {
		t.Fatalf("%d predictions after cancellation", len(res.Predictions))
	}
}

// TestServerClassifyAfterCloseFails documents the shutdown contract.
func TestServerClassifyAfterCloseFails(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, err = srv.Classify(context.Background(), []EncodedImage{{Data: EncodeJPEG(test[0].Image, 90)}})
	if err == nil {
		t.Fatal("Classify on a closed server should error")
	}
}
