// Package smol is a Go reproduction of "Jointly Optimizing Preprocessing
// and Inference for DNN-based Visual Analytics" (Kang et al., VLDB 2020).
//
// Smol executes end-to-end batch visual analytics queries. Unlike systems
// that optimize only DNN execution, it models and optimizes the whole
// pipeline — decode, preprocessing, transfer, and execution — because on
// modern accelerators preprocessing is frequently the bottleneck.
//
// The package exposes three layers:
//
//   - Plan optimization: describe your networks (D) and the natively
//     available input formats (F); Optimize searches D x F with the
//     preprocessing-aware cost model (min of pipelined stage throughputs,
//     Eq. 4 of the paper), places preprocessing operators on CPU or
//     accelerator, and returns the Pareto-optimal set or the best plan
//     under an accuracy/throughput constraint.
//
//   - Execution: a real pipelined runtime engine (multi-producer
//     multi-consumer queue, buffer reuse, pinned staging) that decodes,
//     preprocesses and batches real images for a model you supply.
//
//   - Substrates: from-scratch JPEG (with ROI and early-stop partial
//     decoding), PNG-like, and H.264-like codecs; a CNN library with
//     training (including the low-resolution-aware augmented training of
//     §5.3); and a calibrated hardware model of the paper's testbed.
//
// See the examples directory for runnable walkthroughs.
package smol

import (
	"smol/internal/costmodel"
	"smol/internal/hw"
)

// Re-exported planning types. A Format is one natively available encoding
// of the input data; a DNNChoice pairs a network with its input resolution
// and estimated accuracy; an Evaluated is a plan with its cost-model
// throughput estimate.
type (
	// Format describes a natively available visual data format.
	Format = costmodel.Format
	// DNNChoice pairs a network with an input resolution and accuracy.
	DNNChoice = costmodel.DNNChoice
	// Plan is one executable (DNN, format, preprocessing, placement) tuple.
	Plan = costmodel.Plan
	// Evaluated pairs a plan with estimated accuracy and throughput.
	Evaluated = costmodel.Evaluated
	// Constraint restricts plan selection.
	Constraint = costmodel.Constraint
	// Env is the hardware/software environment plans run in.
	Env = costmodel.Env
)

// Image format kinds for Format.Kind.
const (
	FormatJPEG = hw.FormatJPEG
	FormatPNG  = hw.FormatPNG
	FormatH264 = hw.FormatVideoH264
)

// DefaultEnv returns the paper's testbed environment: one NVIDIA T4 with
// TensorRT and 4 vCPUs (AWS g4dn.xlarge).
func DefaultEnv() Env { return costmodel.DefaultEnv() }

// Optimize generates the D x F plan space, optimizes each plan's
// preprocessing DAG and operator placement, estimates throughput with the
// preprocessing-aware cost model, and returns the Pareto-optimal set
// sorted by ascending throughput.
func Optimize(dnns []DNNChoice, formats []Format, env Env) ([]Evaluated, error) {
	plans, err := costmodel.Generate(dnns, formats, env,
		costmodel.GenerateOptions{OptimizePreproc: true, PlaceOps: true})
	if err != nil {
		return nil, err
	}
	evals, err := costmodel.Evaluate(plans, env)
	if err != nil {
		return nil, err
	}
	return costmodel.ParetoFrontier(evals), nil
}

// Select optimizes and then picks the single best plan under the
// constraint: the fastest plan meeting MinAccuracy, the most accurate plan
// meeting MinThroughput, or the fastest plan overall when unconstrained.
func Select(dnns []DNNChoice, formats []Format, env Env, c Constraint) (Evaluated, error) {
	plans, err := costmodel.Generate(dnns, formats, env,
		costmodel.GenerateOptions{OptimizePreproc: true, PlaceOps: true})
	if err != nil {
		return Evaluated{}, err
	}
	evals, err := costmodel.Evaluate(plans, env)
	if err != nil {
		return Evaluated{}, err
	}
	return costmodel.Select(evals, c)
}

// EstimateThroughput returns the preprocessing-aware throughput estimate
// (Eq. 4) for a single plan.
func EstimateThroughput(p Plan, env Env) (float64, error) {
	return costmodel.EstimateSmol(p, env)
}

// EstimateLatency returns the worst-case per-image latency estimate in
// microseconds for a plan in env's pipelined batch engine (the
// latency-constrained deployment of §3.1). Pair with Constraint.MaxLatencyUS
// in Select, or with BatchForLatency to tune the batch size.
func EstimateLatency(p Plan, env Env) (float64, error) {
	return costmodel.EstimateLatencyUS(p, env)
}

// BatchForLatency returns the largest batch size (halving from
// env.BatchSize) whose estimated worst-case latency meets the target, and
// the throughput that batch achieves.
func BatchForLatency(p Plan, env Env, maxLatencyUS float64) (batch int, throughput float64, err error) {
	return costmodel.BatchForLatency(p, env, maxLatencyUS)
}
