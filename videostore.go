package smol

import (
	"context"
	"fmt"
	"sync"

	"smol/internal/blazeit"
	"smol/internal/codec/vid"
	"smol/internal/engine"
	"smol/internal/img"
	"smol/internal/store"
)

// IngestOptions re-exports the media store's ingest configuration
// (rendition short edges and encoder quality).
type IngestOptions = store.IngestOptions

// MediaStore is the durable, indexed home for video streams the serving
// stack samples from. Ingest writes each stream exactly once, scans and
// persists its GOP table in a sidecar, and optionally materializes
// low-resolution renditions (the planner prices them through
// ServePlan.Stream, exactly like request-supplied Variants). Ingest is
// crash-safe: a write-ahead journal brackets every ingest, and Open
// removes the files of any ingest that did not reach its commit record.
//
// The payoff is at query time: store-backed requests skip the per-request
// header probe and index scan, and sampling seeks straight to the GOPs
// containing the sampled frames — decode work scales with the sample
// count, not the stream length.
type MediaStore struct {
	st *store.Store
}

// OpenMediaStore opens (creating if needed) the media store rooted at dir,
// recovering from any interrupted ingest.
func OpenMediaStore(dir string) (*MediaStore, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return &MediaStore{st: st}, nil
}

// Close releases the store's journal handle. Open StoredVideo handles
// remain usable — their bytes are resident.
func (ms *MediaStore) Close() error { return ms.st.Close() }

// Dir returns the store's root directory.
func (ms *MediaStore) Dir() string { return ms.st.Dir() }

// IngestVideo durably adds an SVID stream under name: the stream and its
// renditions are written once, each with its GOP index persisted alongside.
func (ms *MediaStore) IngestVideo(name string, stream []byte, opts IngestOptions) (*StoredVideo, error) {
	v, err := ms.st.Ingest(name, stream, opts)
	if err != nil {
		return nil, err
	}
	return &StoredVideo{st: ms.st, v: v}, nil
}

// Video looks up an ingested video by name.
func (ms *MediaStore) Video(name string) (*StoredVideo, bool) {
	v, ok := ms.st.Video(name)
	if !ok {
		return nil, false
	}
	return &StoredVideo{st: ms.st, v: v}, true
}

// Names lists the ingested videos in sorted order.
func (ms *MediaStore) Names() []string { return ms.st.Names() }

// Len reports how many videos the store holds.
func (ms *MediaStore) Len() int { return ms.st.Len() }

// StoredVideo is a handle to one ingested video: the primary stream plus
// the renditions materialized at ingest, each carrying its persisted GOP
// index. Serve it with Server.ClassifyVideoStored, Server.SelectVideo, or
// Server.EstimateMeanStored.
type StoredVideo struct {
	// st is the owning store: queries read persisted proxy score tables
	// through it and lazily persist the tables they compute.
	st *store.Store
	v  *store.Video
}

// Name returns the video's store name.
func (v *StoredVideo) Name() string { return v.v.Name }

// Info returns the primary stream's probed geometry.
func (v *StoredVideo) Info() VideoInfo { return v.v.Primary.Info }

// Renditions returns the geometry of each materialized low-resolution
// rendition, in ServePlan.Stream order (Stream n > 0 = Renditions()[n-1]).
func (v *StoredVideo) Renditions() []VideoInfo {
	out := make([]VideoInfo, len(v.v.Renditions))
	for i, r := range v.v.Renditions {
		out[i] = r.Info
	}
	return out
}

// ClassifyVideoStored serves a sampled-classification request from the
// media store. The planner chooses jointly across the zoo and the video's
// ingested renditions (opts.Variants is ignored — a stored video's
// renditions ARE its variants); the chosen stream is then sampled through
// its persisted GOP index: the request plans its sample positions up
// front, groups them by containing GOP, and fans disjoint GOPs across a
// bounded pool of resident decoders (RuntimeConfig.VideoDecodeWorkers).
// Each GOP is an independent decode unit, so the workers reconstruct
// bit-identically to a sequential decode, and the frames still enter the
// shared warm engine in frame order. With RuntimeConfig.DisableGOPSeek the
// request falls back to the single-decoder sequential path over the same
// chosen stream — the equivalence oracle for this fan-out.
func (s *Server) ClassifyVideoStored(ctx context.Context, v *StoredVideo, opts VideoOpts) (VideoResult, error) {
	if v == nil || v.v == nil {
		return VideoResult{}, fmt.Errorf("smol: nil stored video")
	}
	stride := opts.Stride
	if stride < 1 {
		stride = 1
	}
	streams := v.v.Streams()
	infos := make([]vid.Info, len(streams))
	for i, str := range streams {
		infos[i] = str.Info
	}
	seek := !s.rt.cfg.DisableGOPSeek
	ent, choice, plan, err := s.rt.planVideoInfos(infos, opts.QoS, stride, opts.Deblock, seek)
	if err != nil {
		return VideoResult{}, err
	}
	chosen := streams[choice.stream]
	decOpts := vid.DecodeOptions{DisableDeblock: !choice.deblock}
	if !seek {
		dec, err := vid.NewDecoder(chosen.Data, decOpts)
		if err != nil {
			return VideoResult{}, err
		}
		return s.classifySequential(ctx, dec, ent, plan, stride, false)
	}
	return s.classifyParallelGOP(ctx, chosen, ent, plan, stride, decOpts)
}

// EstimateMeanStored answers an aggregation query from the media store.
// It is EstimateMean with the store's levers applied: the planner chooses
// among the ingested renditions (opts.Variants is ignored), every decoder
// the query opens is armed with the persisted GOP index, and the sampled
// target pass never retains decoded frames — random access through the
// index costs one GOP prefix per sample, so holding the whole clip
// resident (EstimateMean's aggRetainBytes budget) buys nothing.
func (s *Server) EstimateMeanStored(ctx context.Context, v *StoredVideo, opts AggregateOpts) (AggregateResult, error) {
	if v == nil || v.v == nil {
		return AggregateResult{}, fmt.Errorf("smol: nil stored video")
	}
	if opts.ErrTarget <= 0 {
		return AggregateResult{}, fmt.Errorf("smol: aggregation error target must be positive")
	}
	streams := v.v.Streams()
	infos := make([]vid.Info, len(streams))
	for i, str := range streams {
		infos[i] = str.Info
	}
	seek := !s.rt.cfg.DisableGOPSeek
	ent, choice, plan, err := s.rt.planVideoInfos(infos, opts.QoS, 1, opts.Deblock, seek)
	if err != nil {
		return AggregateResult{}, err
	}
	chosen := streams[choice.stream]
	decOpts := vid.DecodeOptions{DisableDeblock: !choice.deblock}
	// A persisted blob score table for the chosen stream replaces the cheap
	// full pass outright: the persisted raw scores are bit-identical to
	// what the pass would compute (same counter, same full-fidelity
	// decode), so the estimator sees the same control variate while the
	// query decodes only its sampled target frames. Reduced-fidelity plans
	// keep the live pass — cached scores were computed with deblocking on.
	var cachedSpec []float64
	if choice.deblock && v.st != nil {
		if t, ok := v.st.Scores(v.v.Name, choice.stream, blazeit.BlobProxyName); ok {
			cachedSpec = t.Frames
		}
	}
	return s.estimateMeanStream(ctx, chosen.Data, chosen.Index, decOpts, ent, plan, opts, seek, false, cachedSpec)
}

// gopTask is one unit of decode fan-out: the consecutive sampled frames
// that fall inside a single GOP, bound for slots firstSlot onward of the
// request. done closes when the owning worker has filled every slot (or
// recorded err), which is the happens-before edge the consumer relies on
// to read cr.frames race-free.
type gopTask struct {
	frames    []int // sampled frame indices, ascending, within one GOP
	firstSlot int   // request slot of frames[0]
	done      chan struct{}
	err       error
}

// gopTasks plans a request's sample positions (every stride-th frame) and
// groups them by containing GOP — the unit two decoders can work on
// independently. index must cover frames [0, nFrames) contiguously (the
// store guarantees this at ingest).
func gopTasks(index []vid.GOPEntry, nFrames, stride int) []*gopTask {
	var tasks []*gopTask
	g, slot, curGOP := 0, 0, -1
	for f := 0; f < nFrames; f += stride {
		for index[g].FirstFrame+index[g].Frames <= f {
			g++
		}
		if g != curGOP {
			tasks = append(tasks, &gopTask{firstSlot: slot, done: make(chan struct{})})
			curGOP = g
		}
		t := tasks[len(tasks)-1]
		t.frames = append(t.frames, f)
		slot++
	}
	return tasks
}

// gopWorker is one resident decoder of the fan-out pool. Its decoder is
// armed with the stream's persisted GOP index, so every task starts with a
// direct seek — no worker ever decodes a frame outside the GOPs it is
// assigned.
type gopWorker struct {
	dec *vid.Decoder
	cr  *classifyReq
}

// decodeTask seeks to each sampled frame of one GOP and decodes it into a
// pooled image, publishing it in the task's request slots. Ownership of
// each image transfers to the request (the prep worker recycles it into
// framePool after preprocessing), and a warm worker allocates nothing —
// frames and decoder state all recycle.
//
//smol:owns
//smol:noalloc
func (w *gopWorker) decodeTask(t *gopTask) error {
	for i, f := range t.frames {
		if err := w.dec.SeekFrame(f); err != nil {
			return err
		}
		dst, _ := w.cr.framePool.Get().(*img.Image)
		m, err := w.dec.NextInto(dst)
		if err != nil {
			//smol:coldpath decode failure returns the pooled frame
			if dst != nil {
				w.cr.framePool.Put(dst)
			}
			return err
		}
		w.cr.frames[t.firstSlot+i] = m
	}
	return nil
}

// orderedGOPSource feeds the engine from the fan-out pool while preserving
// frame order: tasks arrive on ordered in dispatch order, and the source
// blocks on each task's done channel before emitting its jobs — decode
// parallelism across GOPs, strict sample order into the shared batcher.
type orderedGOPSource struct {
	ctx     context.Context
	cr      *classifyReq
	class   int
	ordered <-chan *gopTask
	cur     *gopTask
	curIdx  int
}

// Next emits the next sampled frame's job once its GOP's worker has
// decoded it.
func (s *orderedGOPSource) Next() (engine.Job, bool, error) {
	for s.cur == nil || s.curIdx >= len(s.cur.frames) {
		select {
		case t, ok := <-s.ordered:
			if !ok {
				return engine.Job{}, false, nil
			}
			s.cur, s.curIdx = t, 0
		case <-s.ctx.Done():
			return engine.Job{}, false, s.ctx.Err()
		}
		select {
		case <-s.cur.done:
		case <-s.ctx.Done():
			return engine.Job{}, false, s.ctx.Err()
		}
		if s.cur.err != nil {
			return engine.Job{}, false, s.cur.err
		}
	}
	i := s.cur.firstSlot + s.curIdx
	s.curIdx++
	return engine.Job{Index: i, Tag: s.cr, Class: s.class}, true, nil
}

// classifyParallelGOP is the store-backed sampling core: plan the sample
// positions, group them by GOP, fan the groups across a bounded pool of
// resident decoders, and stream the decoded frames into the warm engine in
// frame order. The feeder sends each task to the ordered queue before the
// work queue, so the ordered channel's buffer (one slot per worker) bounds
// how many decoded-but-unconsumed GOPs exist — backpressure from the
// engine paces the decode pool just as it paces the sequential path.
func (s *Server) classifyParallelGOP(ctx context.Context, str store.Stream, ent *rtEntry, plan ServePlan, stride int, decOpts vid.DecodeOptions) (VideoResult, error) {
	nFrames := str.Info.Frames
	n := (nFrames + stride - 1) / stride
	cr := &classifyReq{
		frames:    make([]*img.Image, n),
		framePool: &sync.Pool{},
		preds:     make([]int, n),
		entry:     ent,
	}
	tasks := gopTasks(str.Index, nFrames, stride)
	workers := s.rt.videoDecodeWorkers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	pool := make([]*gopWorker, workers)
	for i := range pool {
		dec, err := vid.NewDecoder(str.Data, decOpts)
		if err != nil {
			return VideoResult{}, err
		}
		if err := dec.SetGOPIndex(str.Index); err != nil {
			return VideoResult{}, err
		}
		pool[i] = &gopWorker{dec: dec, cr: cr}
	}

	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	taskCh := make(chan *gopTask)
	ordered := make(chan *gopTask, maxI(workers, 1))
	go func() {
		defer close(taskCh)
		defer close(ordered)
		for _, t := range tasks {
			select {
			case ordered <- t:
			case <-ictx.Done():
				return
			}
			select {
			case taskCh <- t:
			case <-ictx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	wg.Add(len(pool))
	for _, w := range pool {
		go func(w *gopWorker) {
			defer wg.Done()
			for t := range taskCh {
				if err := ictx.Err(); err != nil {
					t.err = err
				} else {
					t.err = w.decodeTask(t)
				}
				close(t.done)
			}
		}(w)
	}

	src := &orderedGOPSource{ctx: ictx, cr: cr, class: ent.class, ordered: ordered}
	stats, err := s.pipe.Process(ictx, src)
	cancel()
	wg.Wait()
	if err != nil {
		return VideoResult{}, err
	}
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i * stride
	}
	var dstats vid.DecodeStats
	for _, w := range pool {
		dstats.Add(w.dec.Stats())
	}
	return VideoResult{
		FrameIndices: indices,
		Predictions:  cr.preds,
		Plan:         plan,
		Stats:        stats,
		Decode:       dstats,
	}, nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
