package smol

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"smol/internal/data"
	"smol/internal/engine"
)

func paperDNNs() []DNNChoice {
	return []DNNChoice{
		{Name: "resnet-18", InputRes: 224, Accuracy: 0.682},
		{Name: "resnet-34", InputRes: 224, Accuracy: 0.719},
		{Name: "resnet-50", InputRes: 224, Accuracy: 0.7434},
	}
}

func paperFormats() []Format {
	return []Format{
		{Name: "full-jpeg", Kind: FormatJPEG, W: 500, H: 375, Quality: 90},
		{Name: "thumb-png", Kind: FormatPNG, W: 215, H: 161, Lossless: true},
	}
}

func TestOptimizeReturnsFrontier(t *testing.T) {
	front, err := Optimize(paperDNNs(), paperFormats(), DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].Throughput <= front[i-1].Throughput {
			t.Fatal("frontier not sorted by throughput")
		}
	}
}

func TestSelectWithConstraint(t *testing.T) {
	sel, err := Select(paperDNNs(), paperFormats(), DefaultEnv(), Constraint{MinAccuracy: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Accuracy < 0.7 {
		t.Fatalf("selected plan accuracy %v", sel.Accuracy)
	}
	if _, err := Select(paperDNNs(), paperFormats(), DefaultEnv(), Constraint{MinAccuracy: 0.999}); err == nil {
		t.Fatal("infeasible constraint should error")
	}
}

func TestEstimateThroughput(t *testing.T) {
	front, err := Optimize(paperDNNs(), paperFormats(), DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	tput, err := EstimateThroughput(front[0].Plan, DefaultEnv())
	if err != nil {
		t.Fatal(err)
	}
	if tput <= 0 {
		t.Fatalf("throughput %v", tput)
	}
}

func TestCodecFacades(t *testing.T) {
	m := NewImage(48, 40)
	for y := 0; y < 40; y++ {
		for x := 0; x < 48; x++ {
			m.Set(x, y, uint8(x*5), uint8(y*6), 100)
		}
	}
	// JPEG round trip.
	dec, err := DecodeJPEG(EncodeJPEG(m, 90))
	if err != nil {
		t.Fatal(err)
	}
	if dec.W != 48 || dec.H != 40 {
		t.Fatalf("jpeg dims %dx%d", dec.W, dec.H)
	}
	// ROI decode.
	part, region, stats, err := DecodeJPEGROI(EncodeJPEG(m, 90), Rect{X0: 8, Y0: 8, X1: 24, Y1: 24})
	if err != nil {
		t.Fatal(err)
	}
	if part.W != region.W() || stats.BlocksIDCT >= stats.BlocksTotal {
		t.Fatalf("ROI decode did not skip work: %+v", stats)
	}
	// PNG round trip is lossless.
	pdec, err := DecodePNG(EncodePNG(m))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pdec.Pix, m.Pix) {
		t.Fatal("png not lossless")
	}
	// Video round trip.
	frames := []*Image{m, m.Clone(), m.Clone()}
	enc, err := EncodeVideo(frames, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	vdec, err := DecodeVideo(enc, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(vdec) != 3 {
		t.Fatalf("decoded %d frames", len(vdec))
	}
}

// trainTinyClassifier builds a 2-class dataset and classifier quickly.
// Training is deterministic (fixed seeds), so the result is memoized and
// shared by every test that needs a trained model.
var (
	tinyOnce sync.Once
	tinyClf  *Classifier
	tinyTest []LabeledImage
	tinyErr  error
)

func trainTinyClassifier(t *testing.T) (*Classifier, []LabeledImage) {
	t.Helper()
	tinyOnce.Do(func() {
		rng := rand.New(rand.NewSource(1))
		var train []LabeledImage
		for i := 0; i < 192; i++ {
			c := i % 2
			train = append(train, LabeledImage{Image: data.RenderImage(rng, c, 2, 16), Label: c})
		}
		for i := 0; i < 40; i++ {
			c := i % 2
			tinyTest = append(tinyTest, LabeledImage{Image: data.RenderImage(rng, c, 2, 16), Label: c})
		}
		tinyClf, tinyErr = TrainClassifier(train, 2, TrainOptions{Epochs: 6, Seed: 2})
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyClf, tinyTest
}

func TestTrainEvaluateSaveLoad(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	acc := clf.Evaluate(test)
	if acc < 0.8 {
		t.Fatalf("accuracy %v on a trivial 2-class task", acc)
	}
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadClassifier(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.Evaluate(test); got != acc {
		t.Fatalf("loaded accuracy %v != %v", got, acc)
	}
}

func TestTrainClassifierValidation(t *testing.T) {
	if _, err := TrainClassifier(nil, 2, TrainOptions{}); err == nil {
		t.Fatal("empty training set should error")
	}
	bad := []LabeledImage{{Image: NewImage(8, 8), Label: 5}}
	if _, err := TrainClassifier(bad, 2, TrainOptions{}); err == nil {
		t.Fatal("out-of-range label should error")
	}
}

func TestRuntimeClassifyEndToEnd(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Encode the test set as JPEGs and classify through the real engine.
	inputs := make([]EncodedImage, len(test))
	labels := make([]int, len(test))
	for i, li := range test {
		inputs[i] = EncodedImage{Data: EncodeJPEG(li.Image, 95)}
		labels[i] = li.Label
	}
	res, err := rt.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != len(test) {
		t.Fatalf("%d predictions", len(res.Predictions))
	}
	correct := 0
	for i, p := range res.Predictions {
		if p == labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.75 {
		t.Fatalf("end-to-end accuracy %v (JPEG artifacts should cost little)", acc)
	}
	if res.Stats.Throughput <= 0 || res.Stats.Batches == 0 {
		t.Fatalf("stats %+v", res.Stats)
	}
}

func TestRuntimeWithEngineOptionsOff(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{
		InputRes: 16, BatchSize: 8,
		Opts: engine.Options{DisableMemReuse: true, DisablePinned: true, DisableThreading: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	inputs := []EncodedImage{{Data: EncodeJPEG(test[0].Image, 90)}}
	if _, err := rt.Classify(inputs); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(nil, RuntimeConfig{InputRes: 16}); err == nil {
		t.Fatal("nil model should error")
	}
	clf, _ := trainTinyClassifier(t)
	if _, err := NewRuntime(clf.Model, RuntimeConfig{}); err == nil {
		t.Fatal("missing InputRes should error")
	}
}

func TestLatencyAPI(t *testing.T) {
	env := DefaultEnv()
	front, err := Optimize(paperDNNs(), paperFormats(), env)
	if err != nil {
		t.Fatal(err)
	}
	p := front[0].Plan
	lat, err := EstimateLatency(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("latency %v", lat)
	}
	batch, tput, err := BatchForLatency(p, env, lat*2)
	if err != nil {
		t.Fatal(err)
	}
	if batch != env.BatchSize {
		t.Fatalf("loose target should keep batch %d, got %d", env.BatchSize, batch)
	}
	if tput <= 0 {
		t.Fatalf("throughput %v", tput)
	}
	// A latency-capped Select only returns plans under the cap.
	sel, err := Select(paperDNNs(), paperFormats(), env, Constraint{MaxLatencyUS: lat * 10})
	if err != nil {
		t.Fatal(err)
	}
	if sel.LatencyUS > lat*10 {
		t.Fatalf("selected latency %v above cap %v", sel.LatencyUS, lat*10)
	}
}
