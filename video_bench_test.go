package smol

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"smol/internal/nn"
)

// benchClip renders and encodes a clip with real motion at the given square
// resolution.
func benchClip(b *testing.B, frames, res, gop int) []byte {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	imgs := make([]*Image, frames)
	for f := range imgs {
		m := NewImage(res, res)
		for y := 0; y < res; y++ {
			for x := 0; x < res; x++ {
				m.Set(x, y, uint8(60+x%160), uint8(70+y%150), uint8(90+((x+y)&63)))
			}
		}
		for k := 0; k < 3; k++ {
			cx := (f*(5+2*k) + k*res/3) % res
			cy := res/4 + k*res/4
			for dy := -5; dy <= 5; dy++ {
				for dx := -8; dx <= 8; dx++ {
					x, y := cx+dx, cy+dy
					if x >= 0 && x < res && y >= 0 && y < res {
						m.Set(x, y, 240, uint8(200+rng.Intn(40)), 150)
					}
				}
			}
		}
		imgs[f] = m
	}
	enc, err := EncodeVideo(imgs, 70, gop)
	if err != nil {
		b.Fatal(err)
	}
	return enc
}

// benchVideoZoo builds a two-entry zoo with pinned accuracies (untrained
// weights — only geometry matters for throughput).
func benchVideoZoo(b *testing.B) *Zoo {
	b.Helper()
	zoo := NewZoo()
	for _, e := range []struct {
		variant string
		res     int
		acc     float64
	}{
		{"resnet-a", 64, 0.95},
		{"resnet-a", 32, 0.80},
	} {
		cfg, err := nn.VariantConfig(e.variant, 4, e.res)
		if err != nil {
			b.Fatal(err)
		}
		model, err := nn.NewResNet(rand.New(rand.NewSource(2)), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := zoo.Add(ZooEntry{Variant: e.variant, InputRes: e.res, Accuracy: e.acc,
			Model: model, Config: cfg}); err != nil {
			b.Fatal(err)
		}
	}
	return zoo
}

// BenchmarkVideoServe sweeps the video planner's fidelity levers through a
// warm server: deblock on/off and the natively-stored resolution variant,
// each forced in isolation, then the accuracy floors that let the planner
// choose jointly. The frames/s metric (sampled frames classified per
// second, decode included) is the number tracked in BENCH_video.json.
func BenchmarkVideoServe(b *testing.B) {
	full := benchClip(b, 24, 256, 8)
	low := benchClip(b, 24, 128, 8)
	rt, err := NewZooRuntime(benchVideoZoo(b), RuntimeConfig{BatchSize: 8})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	cases := []struct {
		name   string
		stream []byte
		opts   VideoOpts
	}{
		{"deblock-on/res-full", full, VideoOpts{Stride: 2, Deblock: DeblockOn}},
		{"deblock-off/res-full", full, VideoOpts{Stride: 2, Deblock: DeblockOff}},
		{"deblock-on/res-low", low, VideoOpts{Stride: 2, Deblock: DeblockOn}},
		{"deblock-off/res-low", low, VideoOpts{Stride: 2, Deblock: DeblockOff}},
		{"floor-strict", full, VideoOpts{Stride: 2, QoS: QoS{MinAccuracy: 0.95},
			Variants: [][]byte{low}}},
		{"floor-relaxed", full, VideoOpts{Stride: 2, Variants: [][]byte{low}}},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			res, err := srv.ClassifyVideo(ctx, bc.stream, bc.opts) // warm pools + plan caches
			if err != nil {
				b.Fatal(err)
			}
			frames := len(res.Predictions)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.ClassifyVideo(ctx, bc.stream, bc.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*frames)/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkEstimateMeanSavings measures the aggregation query and reports
// the target-model invocations it saved against the exhaustive
// classify-every-frame baseline — BlazeIt's headline number (§8.4).
func BenchmarkEstimateMeanSavings(b *testing.B) {
	clip := benchClip(b, 120, 64, 12)
	rt, err := NewZooRuntime(benchVideoZoo(b), RuntimeConfig{BatchSize: 8})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	var last AggregateResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = srv.EstimateMean(ctx, clip, AggregateOpts{ErrTarget: 0.5, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(last.TargetInvocations), "target-invocations")
	b.ReportMetric(float64(last.Frames-last.TargetInvocations), "invocations-saved")
}

// BenchmarkStoreSampling sweeps sampled classification over a store-backed
// clip: the GOP-seek fan-out (default) against the sequential full-decode
// path (DisableGOPSeek) at each stride. Seek decode work scales with the
// sample count — at stride 100 the sequential path decodes ~301 frames per
// request against the fan-out's handful, which is the >=10x the store
// exists for. frames/s counts sampled frames classified per second, decode
// included.
func BenchmarkStoreSampling(b *testing.B) {
	clip := benchClip(b, 360, 128, 20)
	ms, err := OpenMediaStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer ms.Close()
	v, err := ms.IngestVideo("clip", clip, IngestOptions{})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"seek", false}, {"sequential", true}} {
		rt, err := NewZooRuntime(benchVideoZoo(b), RuntimeConfig{BatchSize: 8, DisableGOPSeek: mode.disable})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := rt.Serve()
		if err != nil {
			b.Fatal(err)
		}
		for _, stride := range []int{10, 100} {
			opts := VideoOpts{Stride: stride, Deblock: DeblockOn}
			b.Run(fmt.Sprintf("stride-%d/%s", stride, mode.name), func(b *testing.B) {
				res, err := srv.ClassifyVideoStored(ctx, v, opts) // warm pools + plan caches
				if err != nil {
					b.Fatal(err)
				}
				frames := len(res.Predictions)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := srv.ClassifyVideoStored(ctx, v, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*frames)/b.Elapsed().Seconds(), "frames/s")
			})
		}
		srv.Close()
	}
}
