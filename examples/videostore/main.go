// Videostore: the indexed media store end to end. A synthetic clip is
// ingested ONCE into a MediaStore — the stream is written with a persisted
// per-GOP index (I-frame byte offsets) and a low-resolution rendition is
// materialized alongside — then served many times: ClassifyVideoStored
// seeks straight to the GOPs containing the sampled frames and fans them
// across a pool of resident decoders, and EstimateMeanStored re-decodes
// each sampled frame through the index instead of holding the clip in
// memory. The example runs each query twice, with the GOP index and with
// RuntimeConfig.DisableGOPSeek (the sequential full-decode oracle), and
// prints the decode counters side by side: identical predictions, a
// fraction of the decoded frames.
//
// Compare examples/videoagg, which serves raw []byte streams — the store
// is what turns sampling from O(stream) into O(sampled) decode work.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"

	"smol"
)

const (
	frameW, frameH = 96, 96
	numFrames      = 300
	gop            = 15
	stride         = 50 // classify every 50th frame
	inputRes       = 32
)

// makeClip renders a deterministic moving-pattern clip with two frame
// classes (object present / absent) so classification is meaningful.
func makeClip(seed int64) ([]*smol.Image, []int) {
	rng := rand.New(rand.NewSource(seed))
	frames := make([]*smol.Image, numFrames)
	labels := make([]int, numFrames)
	for f := range frames {
		m := smol.NewImage(frameW, frameH)
		for y := 0; y < frameH; y++ {
			for x := 0; x < frameW; x++ {
				base := uint8(60 + 40*y/frameH + rng.Intn(8))
				m.Set(x, y, base, base, base+20)
			}
		}
		// Every other 10-frame block carries a bright mover: class 1.
		if (f/10)%2 == 1 {
			cx := (f * 3) % (frameW - 16)
			for dy := 0; dy < 12; dy++ {
				for dx := 0; dx < 16; dx++ {
					m.Set(cx+dx, frameH/3+dy, 235, 220, 150)
				}
			}
			labels[f] = 1
		}
		frames[f] = m
	}
	return frames, labels
}

func main() {
	log.SetFlags(0)
	frames, _ := makeClip(3)
	enc, err := smol.EncodeVideo(frames, 70, gop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip: %d frames at %dx%d, GOP %d, %dKB encoded\n",
		numFrames, frameW, frameH, gop, len(enc)/1024)

	// Ingest once. The store writes the stream, scans and persists its GOP
	// index, and materializes a 48px rendition the planner can route
	// relaxed-accuracy requests to. Re-opening the directory later skips
	// all of this — the index is in the sidecar.
	dir, err := os.MkdirTemp("", "videostore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := smol.OpenMediaStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	v, err := store.IngestVideo("clip", enc, smol.IngestOptions{RenditionShortEdges: []int{48}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %q: primary %dx%d + %d rendition(s), GOP index persisted\n",
		v.Name(), v.Info().W, v.Info().H, len(v.Renditions()))

	// Train the classifier on an independently seeded clip.
	trainFrames, trainLabels := makeClip(17)
	train := make([]smol.LabeledImage, len(trainFrames))
	for i := range trainFrames {
		train[i] = smol.LabeledImage{Image: trainFrames[i], Label: trainLabels[i]}
	}
	fmt.Println("training the classifier...")
	clf, err := smol.TrainClassifier(train, 2, smol.TrainOptions{Epochs: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	run := func(label string, disableSeek bool) smol.VideoResult {
		rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{
			InputRes: inputRes, BatchSize: 16, DisableGOPSeek: disableSeek,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := rt.Serve()
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		res, err := srv.ClassifyVideoStored(ctx, v, smol.VideoOpts{Stride: stride, Deblock: smol.DeblockOn})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %d samples, decoded %3d frames, bypassed %3d via %d GOP seeks\n",
			label, len(res.Predictions), res.Decode.FramesDecoded,
			res.Decode.FramesBypassed, res.Decode.GOPSeeks)
		return res
	}

	fmt.Printf("\nClassifyVideoStored at stride %d:\n", stride)
	seek := run("GOP-seek:", false)
	seq := run("sequential:", true)
	for i := range seek.Predictions {
		if seek.Predictions[i] != seq.Predictions[i] {
			log.Fatalf("sample %d: seek predicted %d, sequential %d — paths diverged",
				i, seek.Predictions[i], seq.Predictions[i])
		}
	}
	fmt.Printf("predictions bit-identical; seek path decoded %.1fx fewer frames\n",
		float64(seq.Decode.FramesDecoded)/float64(seek.Decode.FramesDecoded))

	// Aggregation from the store: the cheap proxy still sweeps every frame
	// once, but the sampled target pass re-decodes through the GOP index —
	// no retained frames, decode per sample bounded by one GOP prefix.
	rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{InputRes: inputRes, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	agg, err := srv.EstimateMeanStored(ctx, v, smol.AggregateOpts{ErrTarget: 0.05, Seed: 7, Deblock: smol.DeblockOn})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEstimateMeanStored: %.3f +/- %.3f using %d target invocations (of %d frames), %d GOP seeks\n",
		agg.Estimate, agg.HalfWidth, agg.TargetInvocations, agg.Frames, agg.Decode.GOPSeeks)
}
