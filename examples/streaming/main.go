// Streaming: serve many concurrent classification requests from one warm
// engine. A one-shot Runtime.Classify builds and tears down the whole
// pipeline — tensor pool, pinned staging arena, worker goroutines — per
// call. Runtime.Serve instead keeps those resources resident, so a stream
// of requests shares them: the serving posture the paper's
// latency-constrained deployment mode (§3.1) assumes.
//
// Serve also executes batches in parallel: the runtime compiles the model
// into a reentrant inference plan (folded batch-norm, fused GEMM
// epilogues, recycled activation arenas), so batches from different
// streams run model forwards concurrently — bounded by
// RuntimeConfig.ExecParallel — instead of serializing behind one lock.
//
// The walkthrough trains a tiny classifier, then demonstrates
//  1. concurrent requests interleaving in one pipeline (their samples may
//     share accelerator batches and execute in parallel),
//  2. warm-pool reuse across sequential requests, and
//  3. context cancellation stopping an in-flight request without
//     disturbing its neighbours.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"smol"
	"smol/internal/data"
)

func main() {
	// 1. Train a small 2-class model (see examples/quickstart for details).
	rng := rand.New(rand.NewSource(7))
	const res, classes = 16, 2
	var train, test []smol.LabeledImage
	for i := 0; i < 240; i++ {
		c := i % classes
		train = append(train, smol.LabeledImage{Image: data.RenderImage(rng, c, classes, res), Label: c})
	}
	for i := 0; i < 64; i++ {
		c := i % classes
		test = append(test, smol.LabeledImage{Image: data.RenderImage(rng, c, classes, res), Label: c})
	}
	fmt.Println("training classifier...")
	clf, err := smol.TrainClassifier(train, classes, smol.TrainOptions{Epochs: 6, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	inputs := make([]smol.EncodedImage, len(test))
	for i, li := range test {
		inputs[i] = smol.EncodedImage{Data: smol.EncodeJPEG(li.Image, 90)}
	}

	// 2. Bring up the warm server once; all requests below share it.
	rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{InputRes: res, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// 3. Fire concurrent requests. Each gets only its own predictions even
	// though their samples interleave in the shared queue and batches.
	const callers = 3
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			resu, err := srv.Classify(context.Background(), inputs)
			if err != nil {
				log.Fatalf("request %d: %v", c, err)
			}
			correct := 0
			for i, p := range resu.Predictions {
				if p == test[i].Label {
					correct++
				}
			}
			fmt.Printf("request %d: accuracy %.1f%%, %.0f im/s, %d batches\n",
				c, 100*float64(correct)/float64(len(test)),
				resu.Stats.Throughput, resu.Stats.Batches)
		}(c)
	}
	wg.Wait()

	// 4. A follow-up request rides the warm pool: no new allocations, only
	// reuses (PoolAllocs/PoolReuses are cumulative over the server's life).
	warm, err := srv.Classify(context.Background(), inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm request: pool %d allocs / %d reuses so far\n",
		warm.Stats.PoolAllocs, warm.Stats.PoolReuses)

	// 5. Cancellation: a huge request is cut off mid-stream; the server
	// keeps serving everyone else.
	big := make([]smol.EncodedImage, 20000)
	for i := range big {
		big[i] = inputs[i%len(inputs)]
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	_, err = srv.Classify(ctx, big)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Println("big request cancelled mid-stream, as intended")
	case err == nil:
		fmt.Println("big request finished before the deadline (fast machine!)")
	default:
		log.Fatal(err)
	}
	if _, err := srv.Classify(context.Background(), inputs); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server healthy after cancellation")
}
