// Quickstart: train a tiny classifier on synthetic images, encode the test
// set as JPEG, and classify it end-to-end through Smol's pipelined runtime
// engine (decode -> optimized preprocessing -> batching -> model).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"smol"
	"smol/internal/data"
)

func main() {
	// 1. Build a small 2-class dataset (the bike-bird setting).
	rng := rand.New(rand.NewSource(7))
	const res, classes = 16, 2
	var train, test []smol.LabeledImage
	for i := 0; i < 240; i++ {
		c := i % classes
		train = append(train, smol.LabeledImage{Image: data.RenderImage(rng, c, classes, res), Label: c})
	}
	for i := 0; i < 80; i++ {
		c := i % classes
		test = append(test, smol.LabeledImage{Image: data.RenderImage(rng, c, classes, res), Label: c})
	}

	// 2. Train the cheapest micro-ResNet variant.
	fmt.Println("training classifier...")
	clf, err := smol.TrainClassifier(train, classes, smol.TrainOptions{Epochs: 6, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holdout accuracy (raw images): %.1f%%\n", clf.Evaluate(test)*100)

	// 3. Encode the test set as JPEGs — the form data arrives in at
	// inference time.
	inputs := make([]smol.EncodedImage, len(test))
	for i, li := range test {
		inputs[i] = smol.EncodedImage{Data: smol.EncodeJPEG(li.Image, 90)}
	}

	// 4. Classify through the pipelined engine.
	rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{InputRes: res, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	result, err := rt.Classify(inputs)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, p := range result.Predictions {
		if p == test[i].Label {
			correct++
		}
	}
	fmt.Printf("end-to-end accuracy (JPEG -> engine): %.1f%%\n",
		100*float64(correct)/float64(len(test)))
	fmt.Printf("engine: %.0f im/s, %d batches, %d buffer reuses\n",
		result.Stats.Throughput, result.Stats.Batches, result.Stats.PoolReuses)
}
