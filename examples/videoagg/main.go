// Videoagg: a BlazeIt-style aggregation query ("mean objects per frame")
// answered with a specialized model as a control variate, comparing the
// full-resolution pipeline against Smol's natively-present low-resolution
// one. Everything here is real: the video is encoded and decoded with the
// H.264-like codec, and the specialized model is a connected-components
// counter running on the decoded frames.
package main

import (
	"fmt"
	"log"

	"smol"
	"smol/internal/blazeit"
	"smol/internal/data"
	"smol/internal/hw"
)

// roundTrip pushes frames through the video codec and back.
func roundTrip(frames []*smol.Image) ([]*smol.Image, error) {
	enc, err := smol.EncodeVideo(frames, 70, 30)
	if err != nil {
		return nil, err
	}
	return smol.DecodeVideo(enc, false)
}

// countFrames runs the specialized counter over every decoded frame.
func countFrames(frames []*smol.Image, frameW int) []float64 {
	counter := blazeit.DefaultCounter(frameW)
	out := make([]float64, len(frames))
	for i, f := range frames {
		out[i] = float64(counter.Count(f))
	}
	return out
}

func main() {
	spec, err := data.VideoDataset("taipei")
	if err != nil {
		log.Fatal(err)
	}
	spec.Frames = 400
	video := data.GenerateVideo(spec)
	fmt.Printf("dataset %s: %d frames, true mean %.3f objects/frame\n",
		spec.Name, spec.Frames, video.MeanCount())

	full, err := roundTrip(video.Frames)
	if err != nil {
		log.Fatal(err)
	}
	low, err := roundTrip(video.LowResFrames())
	if err != nil {
		log.Fatal(err)
	}

	oracle := func(f int) float64 { return float64(video.Counts[f]) }
	for _, cond := range []struct {
		name    string
		preds   []float64
		decodeW int
		decodeH int
	}{
		{"full-res decode", countFrames(full, spec.W), 1280, 720},
		{"low-res decode", countFrames(low, spec.LowW), 854, 480},
	} {
		res, err := blazeit.EstimateMean(cond.preds, oracle,
			blazeit.Config{ErrTarget: 0.03, Seed: 9})
		if err != nil {
			log.Fatal(err)
		}
		decodeUS := hw.DecodeCostUS(hw.DecodeSpec{Format: hw.FormatVideoH264,
			W: cond.decodeW, H: cond.decodeH})
		cost := blazeit.QueryCost{
			SpecPassUSPerFrame:    decodeUS / 4,
			TargetUSPerInvocation: 250000,
		}
		fmt.Printf("%-16s estimate %.3f (+/-%.3f), %d target invocations, modeled query time %.1fs\n",
			cond.name, res.Estimate, res.HalfWidth, res.Samples,
			cost.TotalSeconds(spec.Frames, res.Samples))
	}
	fmt.Println("\nSmol's cost model picks whichever configuration minimizes total query time:")
	fmt.Println("low-res decode cuts the per-frame preprocessing cost; a more accurate full-res")
	fmt.Println("specialized model cuts the sample count (§8.4 — the winner is dataset-dependent)")
}
