// Videoagg: a BlazeIt-style aggregation query ("mean objects per frame")
// answered end to end through the public serving API. A synthetic
// fixed-camera video is encoded with the real H.264-like codec at two
// natively-stored resolutions; a small classifier is trained so that its
// predicted class is the per-frame object count; and Server.EstimateMean
// runs the control-variate estimator — a cheap connected-components proxy
// on every decoded frame, the trained model (through the warm engine) only
// on the sampled frames the confidence interval demands.
//
// Compare examples/zoo (still-image planner) and examples/streaming (warm
// concurrent serving); this example is the video workload: ClassifyVideo
// for per-frame predictions with a jointly planned decode fidelity, and
// EstimateMean for aggregation at a fraction of the target-model cost.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"smol"
)

const (
	// Square frames so the same clips can train the counting classifier.
	frameW, frameH = 64, 64
	lowW, lowH     = 32, 32
	numFrames      = 240
	maxObjects     = 3 // classes 0..3 = object count
	inputRes       = 32
)

// drawScene renders a road scene with bright square movers at the given
// horizontal positions.
func drawScene(rng *rand.Rand, xs []float64) *smol.Image {
	m := smol.NewImage(frameW, frameH)
	for y := 0; y < frameH; y++ {
		for x := 0; x < frameW; x++ {
			base := uint8(70 + 50*y/frameH + rng.Intn(6))
			m.Set(x, y, base, base, base+15)
		}
	}
	for i, cx := range xs {
		lane := frameH/4 + i*frameH/5
		for dy := -4; dy <= 4; dy++ {
			for dx := -6; dx <= 6; dx++ {
				x, y := int(cx)+dx, lane+dy
				if x >= 0 && x < frameW && y >= 0 && y < frameH {
					m.Set(x, y, 230, 220, 160)
				}
			}
		}
	}
	return m
}

// makeVideo renders a deterministic clip of movers crossing the scene and
// returns the frames with their ground-truth visible-object counts.
func makeVideo(seed int64) ([]*smol.Image, []int) {
	rng := rand.New(rand.NewSource(seed))
	type mover struct {
		enter int
		speed float64
	}
	var movers []mover
	for f := 0; f < numFrames; f++ {
		if rng.Float64() < 0.04 && len(movers) < 64 {
			movers = append(movers, mover{enter: f, speed: 1 + rng.Float64()*2})
		}
	}
	frames := make([]*smol.Image, numFrames)
	counts := make([]int, numFrames)
	for f := 0; f < numFrames; f++ {
		var xs []float64
		for _, mv := range movers {
			if f < mv.enter {
				continue
			}
			x := float64(f-mv.enter) * mv.speed
			if x < frameW && len(xs) < maxObjects {
				xs = append(xs, x)
			}
		}
		frames[f] = drawScene(rng, xs)
		counts[f] = len(xs)
	}
	return frames, counts
}

// downsample produces the natively-stored low-resolution rendition.
func downsample(frames []*smol.Image) []*smol.Image {
	out := make([]*smol.Image, len(frames))
	for i, f := range frames {
		out[i] = f.ResizeBilinear(lowW, lowH)
	}
	return out
}

func main() {
	log.SetFlags(0)
	frames, counts := makeVideo(3)
	trueMean := 0.0
	for _, c := range counts {
		trueMean += float64(c)
	}
	trueMean /= float64(len(counts))
	fmt.Printf("synthetic clip: %d frames at %dx%d, true mean %.3f objects/frame\n",
		numFrames, frameW, frameH, trueMean)

	// Train a counting classifier (class = object count) on frames from an
	// independently seeded clip, so the query video is unseen.
	trainFrames, trainCounts := makeVideo(17)
	train := make([]smol.LabeledImage, len(trainFrames))
	for i := range trainFrames {
		train[i] = smol.LabeledImage{Image: trainFrames[i], Label: trainCounts[i]}
	}
	fmt.Println("training the counting model...")
	clf, err := smol.TrainClassifier(train, maxObjects+1, smol.TrainOptions{Epochs: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Store the clip at two native resolutions, as a serving stack would.
	full, err := smol.EncodeVideo(frames, 70, 30)
	if err != nil {
		log.Fatal(err)
	}
	low, err := smol.EncodeVideo(downsample(frames), 70, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored renditions: full %dKB, low-res %dKB\n", len(full)/1024, len(low)/1024)

	rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{InputRes: inputRes, BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	// Per-frame classification with the planner choosing decode fidelity.
	res, err := srv.ClassifyVideo(ctx, full, smol.VideoOpts{
		Stride:   5,
		Variants: [][]byte{low},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nClassifyVideo (stride 5): %d frames classified, plan: %s\n",
		len(res.Predictions), res.Plan)
	fmt.Printf("  rendition %d, deblock %v, decoder did %d IDCT blocks / %d deblocked edges\n",
		res.Plan.Stream, res.Plan.Deblock, res.Decode.BlocksIDCT, res.Decode.DeblockedEdges)

	// Aggregation: estimate the model's mean count without running it on
	// every frame.
	for _, errTarget := range []float64{0.30, 0.15} {
		agg, err := srv.EstimateMean(ctx, full, smol.AggregateOpts{
			ErrTarget: errTarget,
			Variants:  [][]byte{low},
			Seed:      9,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nEstimateMean (err target %.2f): estimate %.3f +/- %.3f objects/frame\n",
			errTarget, agg.Estimate, agg.HalfWidth)
		fmt.Printf("  %d of %d target-model invocations (%.0f%% saved), true mean %.3f\n",
			agg.TargetInvocations, agg.Frames,
			100*(1-float64(agg.TargetInvocations)/float64(agg.Frames)), trueMean)
	}
	fmt.Println("\nthe cheap proxy runs on every frame; the trained model only on the sampled")
	fmt.Println("frames the confidence interval demands — the better the proxy tracks the")
	fmt.Println("model, the fewer expensive invocations the query needs (§3.2, §8.4)")
}
