// Selectquery: BlazeIt-style LIMIT queries through the proxy cascade. A
// synthetic surveillance clip — most frames empty, a few carrying a bright
// object — is ingested into a MediaStore with its blob-proxy score sidecar
// materialized, then queried with Server.SelectVideo: "find K frames the
// model says contain the object, proxy confidence at least MinConf". The
// cascade ranks candidates by persisted proxy score and verifies only the
// top of the ranking through the full model, seeking just the GOPs those
// candidates live in; the example runs the same query with
// RuntimeConfig.DisableProxyCascade (verify every sampled frame, the
// equivalence oracle) and prints both sets of counters: identical frames,
// a fraction of the full-model invocations and decoded GOPs.
//
// It also runs the cascade query twice to show the score sidecar at work:
// the second (and every later) query answers the proxy stage from the
// persisted table with zero proxy invocations.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"smol"
)

const (
	frameRes  = 64
	numFrames = 300
	gop       = 15
	inputRes  = 16
	limit     = 10
	class     = 1 // "object present"
)

// renderFrame draws a dark frame; object frames add one bright blob the
// blob-counter proxy scores 1 and empty frames score 0, so a 0.9
// confidence floor on class 1 prunes every empty frame at the proxy stage.
func renderFrame(rng *rand.Rand, object bool) *smol.Image {
	m := smol.NewImage(frameRes, frameRes)
	for y := 0; y < frameRes; y++ {
		for x := 0; x < frameRes; x++ {
			m.Set(x, y, uint8(36+rng.Intn(8)), uint8(36+rng.Intn(8)), uint8(56+rng.Intn(8)))
		}
	}
	if object {
		r := frameRes / 10
		cx := frameRes/4 + rng.Intn(frameRes/2)
		cy := frameRes/4 + rng.Intn(frameRes/2)
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if x, y := cx+dx, cy+dy; x >= 0 && x < frameRes && y >= 0 && y < frameRes {
					m.Set(x, y, 240, 240, uint8(190+rng.Intn(20)))
				}
			}
		}
	}
	return m
}

func main() {
	log.SetFlags(0)
	// The clip: an object appears in every 10th frame (10% selectivity).
	rng := rand.New(rand.NewSource(9))
	frames := make([]*smol.Image, numFrames)
	matches := 0
	for f := range frames {
		object := f%10 == 0
		if object {
			matches++
		}
		frames[f] = renderFrame(rng, object)
	}
	enc, err := smol.EncodeVideo(frames, 80, gop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip: %d frames at %dpx, GOP %d, %d object frames (%dKB encoded)\n",
		numFrames, frameRes, gop, matches, len(enc)/1024)

	// Train a presence detector on independently rendered small frames.
	var train []smol.LabeledImage
	for i := 0; i < 192; i++ {
		c := i % 2
		train = append(train, smol.LabeledImage{Image: renderFrame(rng, c == 1), Label: c})
	}
	fmt.Println("training the presence classifier...")
	clf, err := smol.TrainClassifier(train, 2, smol.TrainOptions{Epochs: 5, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest once, with the blob-proxy score sidecar materialized: every
	// later selection query starts from persisted per-frame scores and
	// per-GOP score bounds.
	dir, err := os.MkdirTemp("", "selectquery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := smol.OpenMediaStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	v, err := store.IngestVideo("cam", enc, smol.IngestOptions{ProxyScores: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %q: GOP index + proxy score sidecar persisted\n\n", v.Name())

	ctx := context.Background()
	opts := smol.SelectOpts{Class: class, MinConf: 0.9, Limit: limit, Deblock: smol.DeblockOn}
	run := func(label string, disableCascade bool) smol.SelectResult {
		rt, err := smol.NewRuntime(clf.Model, smol.RuntimeConfig{
			InputRes: inputRes, BatchSize: 16, DisableProxyCascade: disableCascade,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err := rt.Serve()
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		wall := time.Now()
		res, err := srv.SelectVideo(ctx, v, opts)
		if err != nil {
			log.Fatal(err)
		}
		cached := ""
		if res.ScoresCached {
			cached = " (sidecar)"
		}
		fmt.Printf("%-10s %d frames in %-8s  proxy %3d%s  oracle %3d  GOPs %2d/%d\n",
			label, len(res.Frames), time.Since(wall).Round(time.Millisecond),
			res.ProxyInvocations, cached, res.OracleInvocations, res.GOPsTouched, res.GOPsTotal)
		return res
	}

	fmt.Printf("SELECT ... WHERE class=%d AND confidence>=%.1f LIMIT %d:\n", class, opts.MinConf, limit)
	cascade := run("cascade:", false)
	fullscan := run("full scan:", true)
	if len(cascade.Frames) != len(fullscan.Frames) {
		log.Fatalf("cascade found %d frames, full scan %d — paths diverged", len(cascade.Frames), len(fullscan.Frames))
	}
	for i := range cascade.Frames {
		if cascade.Frames[i] != fullscan.Frames[i] {
			log.Fatalf("result %d: cascade frame %d, full scan %d — paths diverged",
				i, cascade.Frames[i], fullscan.Frames[i])
		}
	}
	fmt.Printf("\nframe sets identical; cascade spent %.1fx fewer full-model invocations\n",
		float64(fullscan.OracleInvocations)/float64(cascade.OracleInvocations))
	fmt.Printf("matches: %v\n", cascade.Frames)
	fmt.Printf("plan: %s\n", cascade.Plan)
}
