// Zoo: serve one task from a multi-variant model zoo with joint
// accuracy/throughput plan selection — the paper's headline workflow run
// live. A single model forces one point on the accuracy/throughput curve;
// a zoo of (variant, input resolution) entries plus a serving planner
// turns the curve into a per-request knob: every request carries a QoS
// target (accuracy floor, latency ceiling, or max throughput) and the
// planner jointly picks the model variant, input resolution, decode scale,
// and preprocessing chain for it, using cost estimates calibrated against
// live measurements of this machine.
//
// The walkthrough
//  1. trains a small zoo (resnet-b and resnet-a at native resolution,
//     resnet-a at half resolution) with measured validation accuracies,
//  2. serves the same test set at different accuracy floors from one warm
//     Server, showing the planner routing each floor to a different entry
//     and the throughput spread that buys, and
//  3. prints each request's ServePlan — the -explain view.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"smol"
	"smol/internal/data"
)

func main() {
	// 1. Render a 6-class dataset (classes differ by shape and fine
	// texture, so resolution genuinely matters) and train the zoo. TrainZoo
	// holds out a validation tail so every entry's accuracy is measured,
	// not assumed.
	rng := rand.New(rand.NewSource(7))
	const fullRes, classes = 64, 6
	var images []smol.LabeledImage
	for i := 0; i < 360; i++ {
		c := i % classes
		images = append(images, smol.LabeledImage{Image: data.RenderImage(rng, c, classes, fullRes), Label: c})
	}
	fmt.Println("training zoo (resnet-b@64, resnet-a@64, resnet-a@16)...")
	zoo, err := smol.TrainZoo(images, classes, smol.ZooTrainOptions{
		// The 16px entry trades fine texture (the classes' distinguishing
		// signal) for a 16x cheaper forward pass — a real accuracy cost the
		// validation split measures.
		Specs:  []smol.ZooSpec{{Variant: "resnet-b"}, {Variant: "resnet-a"}, {Variant: "resnet-a", InputRes: 16}},
		Epochs: 3, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range zoo.Entries() {
		fmt.Printf("  %-12s validation accuracy %.3f\n", e.Name(), e.Accuracy)
	}

	// 2. One warm server for every QoS target. The engine keeps a shape
	// class (tensor pool, staging arena, batch streams) per entry, so
	// requests routed to different entries still share the workers.
	rt, err := smol.NewZooRuntime(zoo, smol.RuntimeConfig{BatchSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	var test []smol.LabeledImage
	for i := 0; i < 96; i++ {
		c := i % classes
		test = append(test, smol.LabeledImage{Image: data.RenderImage(rng, c, classes, 2*fullRes), Label: c})
	}
	inputs := make([]smol.EncodedImage, len(test))
	for i, li := range test {
		inputs[i] = smol.EncodedImage{Data: smol.EncodeJPEG(li.Image, 90)}
	}

	// 3. Sweep accuracy floors through the planner. A strict floor pins
	// the most accurate entry; relaxing it frees the planner to route to
	// cheaper entries for more throughput. Note the strict floor is no
	// longer the slow lane: its f32 forwards run the AVX2 GEMM tier (~7x
	// the portable kernel, bit-identical results — the plan line prints
	// the active kernel), so guaranteed-exact serving inherits most of the
	// relaxed tier's hardware speed.
	best, _ := zoo.Best()
	floors := []float64{best.Accuracy, best.Accuracy - 0.1, 0}
	if _, err := srv.Classify(context.Background(), inputs[:4]); err != nil { // warm the pools
		log.Fatal(err)
	}
	for _, floor := range floors {
		res, err := srv.ClassifyQoS(context.Background(), inputs, smol.QoS{MinAccuracy: floor})
		if err != nil {
			log.Fatal(err)
		}
		correct := 0
		for i, p := range res.Predictions {
			if p == test[i].Label {
				correct++
			}
		}
		fmt.Printf("\nfloor %.3f: measured %.1f%% over %d images at %.0f im/s\n",
			floor, 100*float64(correct)/float64(len(test)), len(test), res.Stats.Throughput)
		fmt.Printf("  plan: %s\n", res.Plan)
	}
}
