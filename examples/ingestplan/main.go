// Ingestplan: walk through the joint decode+preprocess optimization and
// its compiled execution, the pipeline behind Runtime serving.
//
// The preproc planner treats decode resolution as part of the plan space:
// with Spec.DecodeScales set, every legal decode scale (decoded short edge
// must still cover the resize target) is enumerated against every
// post-decode ordering, costed jointly, and pruned. The winning plan's
// decode op is then *lowered* into the JPEG codec (DecodeOptions.Scale —
// reduced 4x4/2x2/1x1 IDCTs) and only the residual chain runs in software,
// which is how a 1920x1080 frame headed for a 224x224 model input skips
// ~94% of its IDCT and color-conversion work.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"smol"
	"smol/internal/codec/jpeg"
	"smol/internal/data"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

func main() {
	// A full-HD frame destined for a 224x224 DNN input.
	rng := rand.New(rand.NewSource(1))
	frame := data.RenderImage(rng, 2, 10, 1080)
	big := frame.ResizeBilinear(1920, 1080)
	encoded := smol.EncodeJPEG(big, 90)
	fmt.Printf("input: 1920x1080 JPEG, %d KB; target: 256-short resize, 224x224 crop\n\n", len(encoded)/1024)

	spec := preproc.Spec{
		InW: 1920, InH: 1080,
		ResizeShort: 256, CropW: 224, CropH: 224,
		Mean:         [3]float32{0.485, 0.456, 0.406},
		Std:          [3]float32{0.229, 0.224, 0.225},
		DecodeScales: []int{1, 2, 4, 8},
	}

	// Joint plan search: cheapest plan per decode scale.
	fmt.Println("plan space (cheapest per decode scale):")
	best := map[int]preproc.Plan{}
	for _, p := range preproc.EnumeratePlans(spec) {
		sc := p.DecodeScale()
		if cur, ok := best[sc]; !ok || preproc.PlanCost(p, spec) < preproc.PlanCost(cur, spec) {
			best[sc] = p
		}
	}
	for _, sc := range []int{1, 2, 4} {
		p := best[sc]
		fmt.Printf("  decode 1/%d: %-45s cost %12.0f\n", sc, p.Name, preproc.PlanCost(p, spec))
	}
	fmt.Println("  decode 1/8: (illegal — decoded short edge 135 < resize target 256)")

	chosen, err := preproc.Optimize(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimizer chose %q (decode scale 1/%d)\n\n", chosen.Name, chosen.DecodeScale())

	// Lower and execute: the decode op becomes jpeg.DecodeOptions.Scale,
	// the rest of the plan runs on the decoder's reduced output.
	out := tensor.New(3, 224, 224)
	run := func(scale int, plan preproc.Plan) (time.Duration, *jpeg.DecodeStats) {
		var dec jpeg.Decoder
		ex := preproc.NewExecutor()
		start := time.Now()
		var stats *jpeg.DecodeStats
		const iters = 5
		for i := 0; i < iters; i++ {
			if _, _, err := dec.Parse(encoded); err != nil {
				log.Fatal(err)
			}
			m, _, st, err := dec.Decode(jpeg.DecodeOptions{Scale: scale})
			if err != nil {
				log.Fatal(err)
			}
			if err := ex.Execute(plan.ResidualAfterDecode(), m, out); err != nil {
				log.Fatal(err)
			}
			stats = st
		}
		return time.Since(start) / iters, stats
	}

	fullTime, fullStats := run(1, best[1])
	scaledTime, scaledStats := run(chosen.DecodeScale(), chosen)
	fmt.Printf("full-decode ingest:   %8s/frame (%d IDCT samples)\n", fullTime.Round(time.Microsecond), fullStats.IDCTSamples)
	fmt.Printf("compiled ingest:      %8s/frame (%d IDCT samples, 1/%d decode)\n",
		scaledTime.Round(time.Microsecond), scaledStats.IDCTSamples, chosen.DecodeScale())
	fmt.Printf("speedup:              %.1fx\n", float64(fullTime)/float64(scaledTime))
}
