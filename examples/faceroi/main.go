// Faceroi: the paper's second ROI use case (§6.4) — computing face
// embeddings. An upstream detector supplies face boxes; the embedding
// network only needs those crops, so Smol decodes just the macroblocks
// each box touches (Algorithm 1) instead of the whole frame, then runs the
// standard resize-and-normalize pipeline on the crop.
//
// The demo measures the decode work skipped per box and checks that the
// ROI path is pixel-identical to cropping a full decode.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"smol"
	"smol/internal/codec/jpeg"
	"smol/internal/data"
	"smol/internal/img"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// face is one upstream detection: a box in pixel coordinates.
type face struct {
	box img.Rect
}

// plantFaces stamps bright elliptical blobs (stand-in "faces") onto the
// image and returns their boxes — the output a detection DNN would hand
// to the embedding stage.
func plantFaces(rng *rand.Rand, m *img.Image, n int) []face {
	faces := make([]face, 0, n)
	for i := 0; i < n; i++ {
		fw := 32 + rng.Intn(32)
		fh := 40 + rng.Intn(32)
		x0 := rng.Intn(m.W - fw)
		y0 := rng.Intn(m.H - fh)
		cx, cy := x0+fw/2, y0+fh/2
		for y := y0; y < y0+fh; y++ {
			for x := x0; x < x0+fw; x++ {
				dx := float64(x-cx) / float64(fw/2)
				dy := float64(y-cy) / float64(fh/2)
				if dx*dx+dy*dy <= 1 {
					m.Set(x, y, 224, 180, 150)
				}
			}
		}
		faces = append(faces, face{box: img.Rect{X0: x0, Y0: y0, X1: x0 + fw, Y1: y0 + fh}})
	}
	return faces
}

func main() {
	rng := rand.New(rand.NewSource(17))
	const res = 512
	frame := data.RenderImage(rng, 4, 10, res)
	faces := plantFaces(rng, frame, 4)
	encoded := smol.EncodeJPEG(frame, 90)
	fmt.Printf("frame %dx%d -> %d bytes JPEG, %d detected faces\n",
		res, res, len(encoded), len(faces))

	// Reference: full decode once, crop per face.
	full, err := jpeg.Decode(encoded)
	if err != nil {
		log.Fatal(err)
	}
	fullStats := decodeStats(encoded, nil)

	// The embedding front end: resize each crop's short side to 36 and
	// center-crop 32x32 (a miniature FaceNet-style input).
	spec := func(w, h int) preproc.Spec {
		return preproc.Spec{InW: w, InH: h, ResizeShort: 36, CropW: 32, CropH: 32,
			Mean: [3]float32{0.5, 0.5, 0.5}, Std: [3]float32{0.25, 0.25, 0.25}}
	}
	ex := preproc.NewExecutor()

	var totalROIWork, totalFullWork int
	for i, f := range faces {
		part, region, stats, err := jpeg.DecodeWithOptions(encoded, jpeg.DecodeOptions{ROI: &f.box})
		if err != nil {
			log.Fatal(err)
		}
		// ROI decode must agree exactly with the full-decode crop.
		for y := 0; y < part.H; y++ {
			for x := 0; x < part.W; x++ {
				for c := 0; c < 3; c++ {
					if part.Pix[(y*part.W+x)*3+c] != full.Pix[((y+region.Y0)*res+x+region.X0)*3+c] {
						log.Fatalf("face %d: ROI decode diverges at (%d,%d)", i, x, y)
					}
				}
			}
		}
		crop := part.Crop(f.box.Shift(-region.X0, -region.Y0))
		s := spec(crop.W, crop.H)
		plan, err := preproc.Optimize(s)
		if err != nil {
			log.Fatal(err)
		}
		out := tensor.New(preproc.OutputShape(s))
		if err := ex.Execute(plan, crop, out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("face %d: box %v -> decoded %d of %d blocks (%.0f%% skipped), embedding input %v\n",
			i, f.box, stats.BlocksIDCT, fullStats.BlocksIDCT,
			100*(1-float64(stats.BlocksIDCT)/float64(fullStats.BlocksIDCT)), out.Shape)
		totalROIWork += stats.BlocksIDCT
		totalFullWork += fullStats.BlocksIDCT
	}
	fmt.Printf("total IDCT work for %d faces: %d blocks vs %d with full decodes (%.1fx less)\n",
		len(faces), totalROIWork, totalFullWork, float64(totalFullWork)/float64(totalROIWork))
}

func decodeStats(encoded []byte, roi *img.Rect) *jpeg.DecodeStats {
	_, _, stats, err := jpeg.DecodeWithOptions(encoded, jpeg.DecodeOptions{ROI: roi})
	if err != nil {
		log.Fatal(err)
	}
	return stats
}
