// Planner: walk through Smol's preprocessing-aware plan optimization (§4):
// describe the available networks and natively present input formats, let
// the cost model search D x F with operator placement, and compare the
// selected plans with what preprocessing-blind selection would pick.
package main

import (
	"fmt"
	"log"

	"smol"
)

func main() {
	env := smol.DefaultEnv()
	fmt.Printf("environment: %s + %s, %d vCPUs\n\n",
		env.Device.Name, env.Framework.Name, env.VCPUs)

	// The networks (with ImageNet accuracies) and the formats the serving
	// stack natively stores: full-resolution JPEGs plus 161-px thumbnails.
	dnns := []smol.DNNChoice{
		{Name: "resnet-18", InputRes: 224, Accuracy: 0.682},
		{Name: "resnet-34", InputRes: 224, Accuracy: 0.725},
		{Name: "resnet-50", InputRes: 224, Accuracy: 0.750},
	}
	formats := []smol.Format{
		{Name: "full-jpeg", Kind: smol.FormatJPEG, W: 500, H: 375, Quality: 90},
		{Name: "thumb-png", Kind: smol.FormatPNG, W: 215, H: 161, Lossless: true},
		{Name: "thumb-jpeg-95", Kind: smol.FormatJPEG, W: 215, H: 161, Quality: 95},
	}

	front, err := smol.Optimize(dnns, formats, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pareto-optimal plans (accuracy vs end-to-end throughput):")
	for _, e := range front {
		fmt.Printf("  %-42s acc %.3f  %7.0f im/s\n", e.Plan, e.Accuracy, e.Throughput)
	}

	// Accuracy-constrained selection: the fastest plan at >= 72% accuracy.
	sel, err := smol.Select(dnns, formats, env, smol.Constraint{MinAccuracy: 0.72})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest plan at >=72%% accuracy: %s (%.0f im/s)\n", sel.Plan, sel.Throughput)

	// The punchline: a bigger DNN on cheaper thumbnails can beat a smaller
	// DNN on full-resolution data, because preprocessing is the bottleneck.
	only50 := []smol.DNNChoice{dnns[2]}
	onlyFull := []smol.Format{formats[0]}
	onlyThumb := []smol.Format{formats[1]}
	full, err := smol.Select(only50, onlyFull, env, smol.Constraint{})
	if err != nil {
		log.Fatal(err)
	}
	thumb, err := smol.Select(only50, onlyThumb, env, smol.Constraint{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nresnet-50 on full-res JPEG:   %7.0f im/s\n", full.Throughput)
	fmt.Printf("resnet-50 on PNG thumbnails:  %7.0f im/s (%.1fx)\n",
		thumb.Throughput, thumb.Throughput/full.Throughput)
}
