// Partialdecode: demonstrate the paper's Algorithm 1 on a real JPEG:
// decode only the macroblocks a central crop needs, and stop the scan at
// the last needed row. The work counters show how much entropy decoding
// and IDCT the ROI decode skipped.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"smol"
	"smol/internal/data"
	"smol/internal/img"
)

func main() {
	// Render and encode a full-resolution image.
	rng := rand.New(rand.NewSource(3))
	const res = 256
	m := data.RenderImage(rng, 1, 10, res)
	encoded := smol.EncodeJPEG(m, 90)
	fmt.Printf("encoded %dx%d image: %d bytes\n", res, res, len(encoded))

	// Full decode for reference.
	full, _, fullStats, err := decodeWithStats(encoded, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full decode:  %4d/%4d MCUs entropy-decoded, %5d blocks IDCT, %6d entropy bytes\n",
		fullStats.MCUsEntropyDecoded, fullStats.MCUsTotal, fullStats.BlocksIDCT,
		fullStats.EntropyBytesRead)

	// ROI decode of the central 96x96 (a DNN's central crop).
	roi := img.CenterCropRect(res, res, 96, 96)
	part, region, roiStats, err := decodeWithStats(encoded, &roi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ROI decode:   %4d/%4d MCUs entropy-decoded, %5d blocks IDCT, %6d entropy bytes\n",
		roiStats.MCUsEntropyDecoded, roiStats.MCUsTotal, roiStats.BlocksIDCT,
		roiStats.EntropyBytesRead)
	fmt.Printf("region decoded: %+v (%dx%d of %dx%d pixels)\n",
		region, part.W, part.H, res, res)
	fmt.Printf("IDCT work saved: %.0f%%; entropy bytes saved: %.0f%%\n",
		100*(1-float64(roiStats.BlocksIDCT)/float64(fullStats.BlocksIDCT)),
		100*(1-float64(roiStats.EntropyBytesRead)/float64(fullStats.EntropyBytesRead)))

	// Verify the ROI decode is pixel-identical to the full decode's crop.
	want := full.Crop(region)
	if img.MeanAbsDiff(part, want) != 0 {
		log.Fatal("ROI decode diverged from full decode")
	}
	fmt.Println("ROI decode matches the full decode exactly within the region")

	// Scaled decode (DecodeOptions.Scale): reconstruct at 1/2, 1/4 or 1/8
	// resolution directly in the DCT domain. Entropy decoding still parses
	// every MCU, but each 8x8 block goes through a reduced 4x4/2x2/1x1
	// IDCT, so reconstruction work (the IDCTSamples counter) and color
	// conversion shrink by ~scale^2 — the right call when the image is
	// headed for a small DNN input anyway.
	for _, scale := range []int{2, 4, 8} {
		small, stats, err := smol.DecodeJPEGScaled(encoded, scale)
		if err != nil {
			log.Fatal(err)
		}
		ref := full.DownsampleBox(scale)
		fmt.Printf("1/%d decode:   %dx%d px, %6d/%6d IDCT samples vs full, %5d px color-converted, diff %.2f vs box downsample\n",
			scale, small.W, small.H, stats.IDCTSamples, fullStats.IDCTSamples,
			stats.PixelsColorConverted, img.MeanAbsDiff(small, ref))
	}

	// Write both out for inspection.
	writePPM("full.ppm", full)
	writePPM("roi.ppm", part)
	fmt.Println("wrote full.ppm and roi.ppm")
}

func decodeWithStats(data []byte, roi *img.Rect) (*smol.Image, img.Rect, *smol.JPEGDecodeStats, error) {
	if roi == nil {
		return decodeAll(data)
	}
	return smol.DecodeJPEGROI(data, *roi)
}

func decodeAll(data []byte) (*smol.Image, img.Rect, *smol.JPEGDecodeStats, error) {
	m, region, stats, err := smol.DecodeJPEGROI(data, img.Rect{X0: 0, Y0: 0, X1: 1 << 20, Y1: 1 << 20})
	return m, region, stats, err
}

func writePPM(path string, m *smol.Image) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := img.WritePPM(f, m); err != nil {
		log.Fatal(err)
	}
}
