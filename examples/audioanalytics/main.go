// Audioanalytics: the paper's §10 future-work direction, realized on a
// real audio codec. Audio compression shares the structure that makes the
// visual optimizations work — a strictly sequential entropy-coded stream
// (IMA ADPCM here, like JPEG's Huffman scan) and a natural fidelity/cost
// trade-off — so the same levers apply:
//
//  1. early-stop partial decoding: a clip-level classifier that only needs
//     the first second of audio decodes only that prefix;
//  2. low-fidelity renditions: a lower sample rate is the audio analogue
//     of a thumbnail, cutting both decode and preprocessing cost;
//  3. preprocessing-aware cost modeling: the Goertzel spectrogram front
//     end is costed with the same operation-count hooks the image
//     pipeline uses, so plans can be compared with the min model (Eq. 4).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"smol/internal/audio"
	"smol/internal/hw"
)

// renderClip synthesizes a clip: a class-dependent tone mixture plus
// noise, the audio counterpart of the synthetic image datasets.
func renderClip(rng *rand.Rand, class, sampleRate int, seconds float64) []int16 {
	n := int(float64(sampleRate) * seconds)
	base := 220.0 * math.Pow(1.5, float64(class))
	out := make([]int16, n)
	for i := range out {
		t := float64(i) / float64(sampleRate)
		v := 0.5*math.Sin(2*math.Pi*base*t) +
			0.25*math.Sin(2*math.Pi*base*2*t) +
			0.05*rng.NormFloat64()
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		out[i] = int16(v * 30000)
	}
	return out
}

// downsample halves the clip rate k times — the "natively present
// low-resolution rendition" a serving system would store.
func downsample(s []int16, k int) []int16 {
	for ; k > 0; k-- {
		out := make([]int16, len(s)/2)
		for i := range out {
			out[i] = int16((int(s[2*i]) + int(s[2*i+1])) / 2)
		}
		s = out
	}
	return s
}

func main() {
	rng := rand.New(rand.NewSource(11))
	const sampleRate = 16000
	const seconds = 4.0

	clip := renderClip(rng, 2, sampleRate, seconds)
	encoded := audio.Encode(clip)
	fmt.Printf("clip: %.0fs at %d Hz -> %d bytes ADPCM (%.1fx smaller than PCM)\n",
		seconds, sampleRate, len(encoded), float64(2*len(clip))/float64(len(encoded)))

	// --- Lever 1: early-stop partial decoding -------------------------
	// A clip-level classifier that keys on the first second of audio need
	// only decode that prefix; ADPCM's sequential predictor makes the
	// saving proportional, exactly like JPEG's raster-order early stop.
	t0 := time.Now()
	full, err := audio.Decode(encoded)
	if err != nil {
		log.Fatal(err)
	}
	fullDur := time.Since(t0)

	t0 = time.Now()
	prefix, stats, err := audio.DecodeSamples(encoded, sampleRate)
	if err != nil {
		log.Fatal(err)
	}
	prefixDur := time.Since(t0)
	fmt.Printf("early stop: decoded %d of %d samples, read %d of %d bytes (%.1fx faster)\n",
		stats.SamplesDecoded, stats.SamplesTotal, stats.BytesRead, len(encoded),
		float64(fullDur)/float64(prefixDur))
	for i := range prefix {
		if prefix[i] != full[i] {
			log.Fatalf("partial decode diverges at sample %d", i)
		}
	}

	// --- Lever 2: low-fidelity renditions ------------------------------
	// An 8 kHz rendition halves decode AND spectrogram cost; the Goertzel
	// bins cover the same frequencies as long as the tones of interest
	// stay under the lower Nyquist.
	cfg := audio.SpectrogramConfig{SampleRate: sampleRate, FrameSize: 400, HopSize: 160, Bins: 40}
	lowClip := downsample(clip, 1)
	lowEncoded := audio.Encode(lowClip)
	lowCfg := cfg
	lowCfg.SampleRate = sampleRate / 2
	lowCfg.FrameSize = cfg.FrameSize / 2
	lowCfg.HopSize = cfg.HopSize / 2

	spec, err := audio.Spectrogram(full, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lowSamples, err := audio.Decode(lowEncoded)
	if err != nil {
		log.Fatal(err)
	}
	lowSpec, err := audio.Spectrogram(lowSamples, lowCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spectrogram: full %v, low-rate %v (same bins, half the frames' samples)\n",
		spec.Shape, lowSpec.Shape)

	// --- Lever 3: preprocessing-aware cost modeling --------------------
	// Cost both plans with the same operation-count hooks the image
	// pipeline uses and compare against a hypothetical audio DNN that
	// executes at 20k clips/s-equivalent on the T4: at full rate the
	// pipeline is preprocessing-bound and the low-rate rendition roughly
	// doubles end-to-end throughput — the Table 3/Figure 4 story on audio.
	fullOps := audio.PreprocCostOps(len(full), cfg)
	lowOps := audio.PreprocCostOps(len(lowSamples), lowCfg)
	fullUS := hw.PostprocCostUS(fullOps)
	lowUS := hw.PostprocCostUS(lowOps)
	const vCPUs = 4
	const execClipsPerSec = 20000.0
	fullPre := vCPUs * 1e6 / fullUS
	lowPre := vCPUs * 1e6 / lowUS
	fmt.Printf("cost model (min of stages, Eq. 4):\n")
	fmt.Printf("  full rate: preproc %.0f clips/s, exec %.0f -> end-to-end %.0f\n",
		fullPre, execClipsPerSec, math.Min(fullPre, execClipsPerSec))
	fmt.Printf("  low rate:  preproc %.0f clips/s, exec %.0f -> end-to-end %.0f (%.1fx)\n",
		lowPre, execClipsPerSec, math.Min(lowPre, execClipsPerSec),
		math.Min(lowPre, execClipsPerSec)/math.Min(fullPre, execClipsPerSec))
}
