package smol

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"smol/internal/data"
	"smol/internal/hw"
)

// trainTinyZoo builds a two-entry zoo from the shared tiny dataset: the
// memoized accurate classifier at 16px (accuracy pinned at 0.95) plus a
// cheap 8px resnet-a (accuracy pinned at 0.60), so planner tests have a
// deterministic accuracy ordering regardless of measured timings.
var (
	tinyZooOnce sync.Once
	tinyZoo     *Zoo
	tinyZooErr  error
)

func trainTinyZoo(t *testing.T) (*Zoo, []LabeledImage) {
	t.Helper()
	clf, test := trainTinyClassifier(t)
	tinyZooOnce.Do(func() {
		rng := rand.New(rand.NewSource(9))
		var train []LabeledImage
		for i := 0; i < 96; i++ {
			c := i % 2
			train = append(train, LabeledImage{Image: data.RenderImage(rng, c, 2, 8), Label: c})
		}
		cheap, err := TrainClassifier(train, 2, TrainOptions{Epochs: 2, Seed: 4})
		if err != nil {
			tinyZooErr = err
			return
		}
		z := NewZoo()
		if err := z.AddClassifier(clf, "resnet-a", 0.95); err != nil {
			tinyZooErr = err
			return
		}
		if err := z.AddClassifier(cheap, "resnet-a", 0.60); err != nil {
			tinyZooErr = err
			return
		}
		tinyZoo = z
	})
	if tinyZooErr != nil {
		t.Fatal(tinyZooErr)
	}
	return tinyZoo, test
}

func encodeTestSet(test []LabeledImage) []EncodedImage {
	inputs := make([]EncodedImage, len(test))
	for i, li := range test {
		inputs[i] = EncodedImage{Data: EncodeJPEG(li.Image, 95)}
	}
	return inputs
}

// TestZooRegistry: Add validation, Best, and the save/load round trip
// (weights, variant names, and measured accuracies all survive).
func TestZooRegistry(t *testing.T) {
	zoo, test := trainTinyZoo(t)
	if zoo.Len() != 2 {
		t.Fatalf("zoo has %d entries", zoo.Len())
	}
	best, ok := zoo.Best()
	if !ok || best.Name() != "resnet-a@16" || best.Accuracy != 0.95 {
		t.Fatalf("best entry %+v", best)
	}
	z2 := NewZoo()
	if err := z2.Add(ZooEntry{Variant: "x", InputRes: 16}); err == nil {
		t.Fatal("entry without model should be rejected")
	}
	if err := z2.Add(zoo.Entries()[0]); err != nil {
		t.Fatal(err)
	}
	if err := z2.Add(zoo.Entries()[0]); err == nil {
		t.Fatal("duplicate entry should be rejected")
	}

	var buf bytes.Buffer
	if err := zoo.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadZoo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != zoo.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), zoo.Len())
	}
	for i, e := range loaded.Entries() {
		orig := zoo.Entries()[i]
		if e.Name() != orig.Name() || e.Accuracy != orig.Accuracy {
			t.Fatalf("entry %d: %s acc %v, want %s acc %v", i, e.Name(), e.Accuracy, orig.Name(), orig.Accuracy)
		}
	}
	// The loaded accurate entry must predict identically to the original.
	rtOrig, err := NewRuntime(zoo.Entries()[0].Model, RuntimeConfig{InputRes: 16, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	rtLoaded, err := NewRuntime(loaded.Entries()[0].Model, RuntimeConfig{InputRes: 16, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	inputs := encodeTestSet(test)
	a, err := rtOrig.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rtLoaded.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatalf("loaded zoo prediction %d differs", i)
		}
	}
}

// TestPlannerStrictFloorMatchesSingleModel: with the accuracy floor set to
// the best entry's accuracy, only that entry is feasible, and the planner
// path must produce bit-identical predictions to today's single-model
// runtime across batch sizes — plan selection changes routing, never
// semantics.
func TestPlannerStrictFloorMatchesSingleModel(t *testing.T) {
	zoo, test := trainTinyZoo(t)
	best, _ := zoo.Best()
	inputs := encodeTestSet(test)
	for _, batch := range []int{1, 8, 32} {
		single, err := NewRuntime(best.Model, RuntimeConfig{InputRes: 16, BatchSize: batch, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := single.Classify(inputs)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: batch, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := zr.ClassifyQoS(inputs, QoS{MinAccuracy: best.Accuracy})
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Entry != best.Name() {
			t.Fatalf("batch %d: strict floor routed to %s, want %s", batch, res.Plan.Entry, best.Name())
		}
		if len(res.Predictions) != len(ref.Predictions) {
			t.Fatalf("batch %d: %d predictions", batch, len(res.Predictions))
		}
		for i := range ref.Predictions {
			if res.Predictions[i] != ref.Predictions[i] {
				t.Fatalf("batch %d image %d: planner predicted %d, single-model %d",
					batch, i, res.Predictions[i], ref.Predictions[i])
			}
		}
	}
}

// TestPlannerQoSRouting: an infeasible floor must fail loudly; a relaxed
// floor must succeed and report a plan whose entry meets it; the planner
// decision must carry predicted throughput for observability.
func TestPlannerQoSRouting(t *testing.T) {
	zoo, test := trainTinyZoo(t)
	zr, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inputs := encodeTestSet(test)
	if _, err := zr.ClassifyQoS(inputs, QoS{MinAccuracy: 0.99}); err == nil {
		t.Fatal("floor above every entry's accuracy should fail")
	}
	res, err := zr.ClassifyQoS(inputs, QoS{MinAccuracy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Accuracy < 0.5 {
		t.Fatalf("relaxed floor chose %+v", res.Plan)
	}
	if res.Plan.PredictedThroughput <= 0 || res.Plan.DecodeScale < 1 || res.Plan.Preproc == "" {
		t.Fatalf("incomplete serve plan %+v", res.Plan)
	}
}

// TestServerMixedQoSConcurrent: 8 goroutines serving alternating QoS
// targets through one warm Server. Strict-floor requests must return the
// accurate entry's exact predictions while max-throughput requests
// interleave in the same pipeline — the mixed-QoS race scenario for the
// planner-aware serving mode (run under -race in CI).
func TestServerMixedQoSConcurrent(t *testing.T) {
	zoo, test := trainTinyZoo(t)
	best, _ := zoo.Best()
	inputs := encodeTestSet(test)

	single, err := NewRuntime(best.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}

	zr, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := zr.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const callers = 8
	var wg sync.WaitGroup
	results := make([]ClassifyResult, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		qos := QoS{} // even callers: max throughput
		if c%2 == 1 {
			qos = QoS{MinAccuracy: best.Accuracy} // odd callers: strict floor
		}
		wg.Add(1)
		go func(c int, qos QoS) {
			defer wg.Done()
			results[c], errs[c] = srv.ClassifyQoS(context.Background(), inputs, qos)
		}(c, qos)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if len(results[c].Predictions) != len(inputs) {
			t.Fatalf("caller %d: %d predictions", c, len(results[c].Predictions))
		}
		if c%2 == 1 {
			if results[c].Plan.Entry != best.Name() {
				t.Fatalf("caller %d: strict floor routed to %s", c, results[c].Plan.Entry)
			}
			for i, p := range results[c].Predictions {
				if p != ref.Predictions[i] {
					t.Fatalf("caller %d image %d: %d, single-model %d", c, i, p, ref.Predictions[i])
				}
			}
		}
	}
}

// TestIngestPlanCacheLRU: adversarially varied input resolutions must not
// disable plan caching — the cache stays bounded, the hottest classes stay
// resident, and evicted classes recompile on next sight with identical
// plans.
func TestIngestPlanCacheLRU(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, MaxCachedPlans: 4})
	if err != nil {
		t.Fatal(err)
	}
	hot := ingestKey{w: 160, h: 120, mcu: 8, res: 16}
	if _, err := rt.ingestFor(hot.w, hot.h, hot.mcu, CodecJPEG, 16); err != nil {
		t.Fatal(err)
	}
	// An adversarial sweep of distinct resolutions, touching the hot class
	// between evictions so recency protects it.
	for i := 0; i < 40; i++ {
		w := 64 + 8*i
		if _, err := rt.ingestFor(w, w, 8, CodecJPEG, 16); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.ingestFor(hot.w, hot.h, hot.mcu, CodecJPEG, 16); err != nil {
			t.Fatal(err)
		}
	}
	if n := rt.ingest.len(); n > 4 {
		t.Fatalf("cache grew to %d entries past its cap of 4", n)
	}
	// The hot class must still be resident (a get hit, not a recompile).
	if _, ok := rt.ingest.get(hot); !ok {
		t.Fatal("recently used class was evicted")
	}
	// Cold classes were evicted but remain servable, with the same plan a
	// fresh runtime would compile.
	ip, err := rt.ingestFor(64, 64, 8, CodecJPEG, 16)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.ingestFor(64, 64, 8, CodecJPEG, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ip.scale != want.scale || ip.full.Name != want.full.Name {
		t.Fatalf("recompiled plan %q/1-%d, fresh runtime %q/1-%d",
			ip.full.Name, ip.scale, want.full.Name, want.scale)
	}
}

// TestTrainZoo: the training helper must hold out a validation split,
// measure real accuracies, and produce a servable zoo.
func TestTrainZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	rng := rand.New(rand.NewSource(11))
	var images []LabeledImage
	for i := 0; i < 160; i++ {
		c := i % 2
		images = append(images, LabeledImage{Image: data.RenderImage(rng, c, 2, 16), Label: c})
	}
	zoo, err := TrainZoo(images, 2, ZooTrainOptions{
		Specs:  []ZooSpec{{Variant: "resnet-a"}, {Variant: "resnet-a", InputRes: 8}},
		Epochs: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if zoo.Len() != 2 {
		t.Fatalf("%d entries", zoo.Len())
	}
	for _, e := range zoo.Entries() {
		if e.Accuracy < 0 || e.Accuracy > 1 {
			t.Fatalf("entry %s accuracy %v", e.Name(), e.Accuracy)
		}
	}
	if zoo.Entries()[0].Accuracy < 0.8 {
		t.Fatalf("native-res entry accuracy %v on a trivial task", zoo.Entries()[0].Accuracy)
	}
	zr, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]EncodedImage, 8)
	for i := range inputs {
		inputs[i] = EncodedImage{Data: EncodeJPEG(images[i].Image, 95)}
	}
	res, err := zr.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != len(inputs) {
		t.Fatalf("%d predictions", len(res.Predictions))
	}
}

// TestPlannerEmptyRequest: an empty Classify must stay a successful no-op
// (no calibration pass, no fabricated input class), while an
// unsatisfiable accuracy floor still fails.
func TestPlannerEmptyRequest(t *testing.T) {
	zoo, _ := trainTinyZoo(t)
	zr, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := zr.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := srv.ClassifyQoS(context.Background(), nil, QoS{MaxLatencyUS: 1})
	if err != nil {
		t.Fatalf("empty request failed: %v", err)
	}
	if len(res.Predictions) != 0 || res.Plan.Entry == "" {
		t.Fatalf("empty request result %+v", res)
	}
	if _, err := srv.ClassifyQoS(context.Background(), nil, QoS{MinAccuracy: 0.99}); err == nil {
		t.Fatal("unsatisfiable floor on empty request should fail")
	}
}

// TestPlannerROICosting: with ROIDecode the planner must price the
// MCU-aligned central-crop decode the runtime actually executes, so its
// throughput prediction on decode-bound inputs beats the full-frame
// prediction. Calibration is pinned so the comparison is deterministic.
func TestPlannerROICosting(t *testing.T) {
	zoo, _ := trainTinyZoo(t)
	pin := &hw.Calibration{
		ExecUS:       map[string]float64{"resnet-a@16": 50, "resnet-a@8": 20},
		PreprocScale: 1,
	}
	sel := func(roi bool) ServePlan {
		zr, err := NewZooRuntime(zoo, RuntimeConfig{
			BatchSize: 8, Workers: 2, ROIDecode: roi,
			// Full decode isolates the ROI effect from scale selection.
			DisableScaledDecode: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		zr.calOnce.Do(func() { zr.cal = pin })
		// A wide input whose central crop covers a small fraction.
		s, err := zr.selectPlan(selKey{w: 1280, h: 240, qos: QoS{MinAccuracy: 0.9}})
		if err != nil {
			t.Fatal(err)
		}
		return s.plan
	}
	full := sel(false)
	roi := sel(true)
	if roi.PredictedThroughput <= full.PredictedThroughput {
		t.Fatalf("ROI-decode prediction %.0f im/s not above full-frame %.0f im/s",
			roi.PredictedThroughput, full.PredictedThroughput)
	}
}
