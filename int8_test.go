package smol

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"smol/internal/hw"
	"smol/internal/nn"
)

// quantizedTinyZoo builds a fresh copy of the shared tiny zoo and appends
// int8 twins calibrated and scored on the held-out test split. A copy, not
// the memoized zoo itself, so tests that count entries stay independent.
func quantizedTinyZoo(t *testing.T) (*Zoo, []LabeledImage) {
	t.Helper()
	zoo, test := trainTinyZoo(t)
	z := NewZoo()
	for _, e := range zoo.Entries() {
		if err := z.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := QuantizeZoo(z, test); err != nil {
		t.Fatal(err)
	}
	return z, test
}

// TestQuantizeZoo: every compilable entry gains an int8 twin whose name
// carries the precision suffix, whose accuracy is measured (strictly below
// the parent's, so exact floors stay f32) and within two points of the f32
// plan's own accuracy on the same held-out split.
func TestQuantizeZoo(t *testing.T) {
	zoo, test := trainTinyZoo(t)
	z, _ := quantizedTinyZoo(t)
	if z.Len() != 2*zoo.Len() {
		t.Fatalf("quantized zoo has %d entries, want %d", z.Len(), 2*zoo.Len())
	}
	for _, parent := range zoo.Entries() {
		var twin ZooEntry
		found := false
		for _, e := range z.Entries() {
			if e.Int8() && e.Variant == parent.Variant && e.InputRes == parent.InputRes {
				twin, found = e, true
			}
		}
		if !found {
			t.Fatalf("no int8 twin for %s", parent.Name())
		}
		if twin.Name() != parent.Name()+"/int8" {
			t.Fatalf("twin name %s, want %s/int8", twin.Name(), parent.Name())
		}
		if twin.Accuracy >= parent.Accuracy {
			t.Fatalf("twin %s accuracy %v not strictly below parent %v",
				twin.Name(), twin.Accuracy, parent.Accuracy)
		}
		if len(twin.Calib.ActScales) == 0 || twin.Calib.InputScale <= 0 {
			t.Fatalf("twin %s has no calibration", twin.Name())
		}

		// The acceptance bound: the int8 tier's real held-out accuracy is
		// within 2 points of the f32 plan's on the same split. Measure both
		// through the same batches (the parent's stored Accuracy is pinned
		// by the test fixture, not measured, so compare plan vs plan).
		plan, err := nn.Compile(parent.Model)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := nn.Quantize(plan, twin.Calib)
		if err != nil {
			t.Fatal(err)
		}
		batches, labels := labeledBatches(resizeLabeled(test, parent.InputRes), 32)
		f32Correct, int8Correct, total := 0, 0, 0
		for bi, b := range batches {
			fp := plan.Predict(b)
			ip := qp.Predict(b)
			for i := range fp {
				if fp[i] == labels[bi][i] {
					f32Correct++
				}
				if ip[i] == labels[bi][i] {
					int8Correct++
				}
				total++
			}
		}
		f32Acc := float64(f32Correct) / float64(total)
		int8Acc := float64(int8Correct) / float64(total)
		if math.Abs(f32Acc-int8Acc) > 0.02 {
			t.Fatalf("%s: int8 held-out accuracy %.3f drifts more than 2 points from f32 %.3f",
				twin.Name(), int8Acc, f32Acc)
		}
	}
}

// TestInt8ZooSaveLoad: precision tags and activation calibrations survive
// the zoo round trip, and the reloaded int8 entries predict bit-identically
// (weight scales are recomputed from the f32 weights, activation scales
// come from the persisted calibration — nothing else feeds the plan).
func TestInt8ZooSaveLoad(t *testing.T) {
	z, test := quantizedTinyZoo(t)
	var buf bytes.Buffer
	if err := z.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadZoo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != z.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), z.Len())
	}
	for i, e := range loaded.Entries() {
		orig := z.Entries()[i]
		if e.Name() != orig.Name() || e.Precision != orig.Precision || e.Accuracy != orig.Accuracy {
			t.Fatalf("entry %d round-tripped to %s/%q acc %v, want %s/%q acc %v",
				i, e.Name(), e.Precision, e.Accuracy, orig.Name(), orig.Precision, orig.Accuracy)
		}
		if !reflect.DeepEqual(e.Calib, orig.Calib) {
			t.Fatalf("entry %s calibration did not round-trip", e.Name())
		}
	}
	inputs := encodeTestSet(test)
	a := classifyThroughInt8(t, z, inputs)
	b := classifyThroughInt8(t, loaded, inputs)
	if a.Plan.Entry != b.Plan.Entry {
		t.Fatalf("loaded zoo routed to %s, original to %s", b.Plan.Entry, a.Plan.Entry)
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatalf("loaded zoo prediction %d differs", i)
		}
	}
}

// classifyThroughInt8 serves one request through a runtime whose planner is
// pinned to make the int8 twins strictly cheaper, so the relaxed floor
// deterministically routes to the quantized tier.
func classifyThroughInt8(t *testing.T, z *Zoo, inputs []EncodedImage) ClassifyResult {
	t.Helper()
	zr, err := NewZooRuntime(z, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	zr.calOnce.Do(func() { zr.cal = pinnedInt8Calibration(z) })
	res, err := zr.ClassifyQoS(inputs, QoS{MinAccuracy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Precision != PrecisionInt8 {
		t.Fatalf("pinned-cost relaxed floor served %s at %s, want int8",
			res.Plan.Entry, res.Plan.Precision)
	}
	return res
}

// pinnedInt8Calibration prices every int8 entry at a quarter of its f32
// sibling's execution cost, removing timing noise from routing tests.
func pinnedInt8Calibration(z *Zoo) *hw.Calibration {
	cal := &hw.Calibration{ExecUS: make(map[string]float64), PreprocScale: 1}
	for _, e := range z.Entries() {
		us := 100.0
		if e.Int8() {
			us = 25.0
		}
		cal.ExecUS[e.Name()] = us
	}
	return cal
}

// TestInt8StrictFloorBitIdentical: with the accuracy floor set exactly to
// the best f32 entry's accuracy, the int8 twins (capped strictly below it)
// are infeasible, the plan reports fp32, and predictions are bit-identical
// to the single-model runtime — even when the pinned cost model makes int8
// look four times faster.
func TestInt8StrictFloorBitIdentical(t *testing.T) {
	z, test := quantizedTinyZoo(t)
	best, _ := z.Best()
	if best.Int8() {
		t.Fatalf("best entry %s is int8; caps should keep f32 on top", best.Name())
	}
	inputs := encodeTestSet(test)
	single, err := NewRuntime(best.Model, RuntimeConfig{InputRes: best.InputRes, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := single.Classify(inputs)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := NewZooRuntime(z, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	zr.calOnce.Do(func() { zr.cal = pinnedInt8Calibration(z) })
	res, err := zr.ClassifyQoS(inputs, QoS{MinAccuracy: best.Accuracy})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Entry != best.Name() || res.Plan.Precision != PrecisionFP32 {
		t.Fatalf("strict floor routed to %s [%s], want %s [fp32]",
			res.Plan.Entry, res.Plan.Precision, best.Name())
	}
	for i := range ref.Predictions {
		if res.Predictions[i] != ref.Predictions[i] {
			t.Fatalf("image %d: strict-floor prediction %d, single-model %d",
				i, res.Predictions[i], ref.Predictions[i])
		}
	}
}

// TestInt8RelaxedFloorRoutesToInt8: under a pinned cost model where the
// quantized twins are strictly cheaper, a floor below the twins' measured
// accuracy must route to the int8 tier and still serve correct-length,
// deterministic predictions end to end through the real pipeline.
func TestInt8RelaxedFloorRoutesToInt8(t *testing.T) {
	z, test := quantizedTinyZoo(t)
	inputs := encodeTestSet(test)
	res := classifyThroughInt8(t, z, inputs)
	if len(res.Predictions) != len(inputs) {
		t.Fatalf("%d predictions for %d inputs", len(res.Predictions), len(inputs))
	}
	if !strings.HasSuffix(res.Plan.Entry, "/int8") {
		t.Fatalf("int8 plan entry %s lacks the precision suffix", res.Plan.Entry)
	}
	again := classifyThroughInt8(t, z, inputs)
	for i := range res.Predictions {
		if res.Predictions[i] != again.Predictions[i] {
			t.Fatalf("int8 serving nondeterministic at image %d", i)
		}
	}
}

// TestInt8ServerConcurrent: 8 goroutines hammer one warm Server pinned to
// the int8 tier. Integer accumulation is exact, so every request must
// return the same predictions; under -race this is the quantized serving
// reentrancy proof.
func TestInt8ServerConcurrent(t *testing.T) {
	z, test := quantizedTinyZoo(t)
	inputs := encodeTestSet(test)
	zr, err := NewZooRuntime(z, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	zr.calOnce.Do(func() { zr.cal = pinnedInt8Calibration(z) })
	srv, err := zr.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want, err := srv.ClassifyQoS(context.Background(), inputs, QoS{MinAccuracy: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if want.Plan.Precision != PrecisionInt8 {
		t.Fatalf("warm-up request served at %s, want int8", want.Plan.Precision)
	}
	const callers = 8
	var wg sync.WaitGroup
	results := make([]ClassifyResult, callers)
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = srv.ClassifyQoS(context.Background(), inputs, QoS{MinAccuracy: 0.5})
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if results[c].Plan.Precision != PrecisionInt8 {
			t.Fatalf("caller %d served at %s", c, results[c].Plan.Precision)
		}
		for i, p := range results[c].Predictions {
			if p != want.Predictions[i] {
				t.Fatalf("caller %d image %d: %d, want %d", c, i, p, want.Predictions[i])
			}
		}
	}
}

// TestDisableInt8 drops quantized entries at runtime construction, and an
// all-int8 zoo with the tier disabled fails loudly instead of serving
// nothing.
func TestDisableInt8(t *testing.T) {
	z, _ := quantizedTinyZoo(t)
	zr, err := NewZooRuntime(z, RuntimeConfig{BatchSize: 8, DisableInt8: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range zr.Entries() {
		if strings.Contains(name, "/int8") {
			t.Fatalf("DisableInt8 runtime still carries %s", name)
		}
	}
	only := NewZoo()
	for _, e := range z.Entries() {
		if e.Int8() {
			if err := only.Add(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := NewZooRuntime(only, RuntimeConfig{DisableInt8: true}); err == nil {
		t.Fatal("all-int8 zoo with DisableInt8 should fail")
	}
}

// TestInt8EntryValidation: int8 entries without a calibration are rejected
// at Add time, and building a runtime over an int8 entry that cannot use
// the compiled path fails instead of silently serving f32.
func TestInt8EntryValidation(t *testing.T) {
	zoo, _ := trainTinyZoo(t)
	e := zoo.Entries()[0]
	e.Precision = PrecisionInt8
	if err := NewZoo().Add(e); err == nil {
		t.Fatal("int8 entry without calibration should be rejected")
	}
	z, _ := quantizedTinyZoo(t)
	if _, err := NewZooRuntime(z, RuntimeConfig{DisableCompiled: true}); err == nil {
		t.Fatal("int8 entries need the compiled path; DisableCompiled should fail")
	}
}
