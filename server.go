package smol

import (
	"context"

	"smol/internal/engine"
)

// Server is a long-lived serving frontend over one warm engine pipeline:
// the preprocessing workers, per-variant tensor pools, and pinned staging
// arenas come up once and stay resident, and any number of concurrent
// Classify calls share them (the latency-constrained deployment mode of
// §3.1). Each request is routed by the serving planner: its QoS target
// (accuracy floor, latency ceiling, or max throughput) picks a zoo entry,
// decode scale, and preprocessing chain jointly, and the engine keeps a
// shape class per entry so requests with different targets share the warm
// pipeline without sharing batches. When a model compiles (see
// nn.Compile), its batches execute through the reentrant compiled
// inference plan, so different engine streams run model forwards in
// parallel up to RuntimeConfig.ExecParallel instead of serializing behind
// a global lock. Samples from different requests with the same chosen
// entry may share accelerator batches; results, per-image
// decode/preprocess errors, and cancellation stay confined to their own
// request. The one shared failure domain is batch execution: if the model
// forward fails, every request with a sample in that batch fails, while
// the server itself keeps serving later requests.
//
// Beyond classification, a Server answers whole-video queries over the
// media store: ClassifyVideoStored and EstimateMeanStored sample through
// the GOP index, and SelectVideo runs LIMIT selection queries through a
// two-stage proxy cascade with store-level predicate pushdown.
//
// Create a Server with Runtime.Serve and release it with Close.
type Server struct {
	rt   *Runtime
	pipe *engine.Pipeline
}

// Serve brings up a resident streaming pipeline for this runtime and
// returns the Server fronting it. The returned Server is safe for
// concurrent use; Close it to release the engine's goroutines.
func (r *Runtime) Serve() (*Server, error) {
	pipe, err := engine.NewPipeline(r.engineConfig(), r.prepFunc(), r.execFunc())
	if err != nil {
		return nil, err
	}
	return &Server{rt: r, pipe: pipe}, nil
}

// Classify streams one request's encoded inputs through the shared warm
// engine under the runtime's default QoS and blocks until every prediction
// is ready, ctx is cancelled, or a stage fails. Concurrent calls
// interleave in the pipeline and may share batches; each call only ever
// sees its own predictions.
//
// On cancellation Classify returns ctx's error promptly; the request's
// in-flight samples are dropped inside the engine without disturbing other
// requests.
func (s *Server) Classify(ctx context.Context, inputs []EncodedImage) (ClassifyResult, error) {
	return s.ClassifyQoS(ctx, inputs, s.rt.cfg.QoS)
}

// ClassifyQoS is Classify with a per-request serving target: the planner
// re-selects the zoo entry (and with it the decode scale and
// preprocessing chain) for this request alone, so one warm Server can
// serve an accuracy-floor request and a max-throughput request
// back-to-back from the same pipeline.
func (s *Server) ClassifyQoS(ctx context.Context, inputs []EncodedImage, qos QoS) (ClassifyResult, error) {
	return s.ClassifyMedia(ctx, mediaInputs(inputs), qos)
}

// ClassifyMedia is the codec-generic form of ClassifyQoS: each input is
// tagged with its codec rather than assumed JPEG-or-PNG. Video streams are
// whole requests, not single samples — route them through ClassifyVideo.
func (s *Server) ClassifyMedia(ctx context.Context, inputs []MediaInput, qos QoS) (ClassifyResult, error) {
	ent, plan, err := s.rt.planFor(inputs, qos)
	if err != nil {
		return ClassifyResult{}, err
	}
	cr := &classifyReq{inputs: inputs, preds: make([]int, len(inputs)), entry: ent}
	jobs := make([]engine.Job, len(inputs))
	for i := range jobs {
		jobs[i] = engine.Job{Index: i, Tag: cr, Class: ent.class}
	}
	stats, err := s.pipe.Process(ctx, engine.SliceSource(jobs))
	if err != nil {
		return ClassifyResult{}, err
	}
	return ClassifyResult{Predictions: cr.preds, Plan: plan, Stats: stats}, nil
}

// Close tears the pipeline down, waiting for resident goroutines to exit.
// Requests still in flight fail with engine.ErrPipelineClosed.
func (s *Server) Close() {
	s.pipe.Close()
}
