package smol

import (
	"math/rand"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/codec/jpeg"
	"smol/internal/data"
	"smol/internal/engine"
	"smol/internal/img"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// renderLargeInputs draws class-bearing images well above the model's
// input resolution, the regime where the ingest planner should choose a
// reduced decode scale.
func renderLargeInputs(n, res int) ([]EncodedImage, []*img.Image) {
	rng := rand.New(rand.NewSource(77))
	inputs := make([]EncodedImage, n)
	images := make([]*img.Image, n)
	for i := range inputs {
		m := data.RenderImage(rng, i%2, 2, res)
		images[i] = m
		inputs[i] = EncodedImage{Data: EncodeJPEG(m, 95)}
	}
	return inputs, images
}

// TestIngestPlanSelectsScale: the runtime's compiled ingest plan must pick
// the largest decode scale whose decoded short edge covers the input
// resolution, and full decode when scaling is disabled or the input is
// small.
func TestIngestPlanSelectsScale(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 160x120 to 16px target: 1/8 gives short edge 15 (< 16), so 1/4 (30)
	// is the largest legal scale.
	ip, err := rt.ingestFor(160, 120, 8, CodecJPEG, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ip.scale != 4 {
		t.Fatalf("160x120 -> 16px chose scale 1/%d (%q), want 1/4", ip.scale, ip.full.Name)
	}
	if ip.roi != nil {
		t.Fatal("ROI set without ROIDecode")
	}
	if len(ip.resid.Ops) != len(ip.full.Ops)-1 {
		t.Fatalf("residual chain should drop exactly the decode op: %d vs %d ops",
			len(ip.resid.Ops), len(ip.full.Ops))
	}
	// 16x16 input: no reduced scale is legal.
	ip, err = rt.ingestFor(16, 16, 8, CodecJPEG, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ip.scale != 1 {
		t.Fatalf("16x16 input chose scale 1/%d", ip.scale)
	}
	// PNG inputs never scale (the codec cannot).
	ip, err = rt.ingestFor(160, 120, 0, CodecPNG, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ip.scale != 1 || ip.full.DecodeScale() != 1 {
		t.Fatalf("PNG ingest chose scale 1/%d", ip.scale)
	}
	// Disabled: full decode regardless of geometry.
	rtFull, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, DisableScaledDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	ip, err = rtFull.ingestFor(160, 120, 8, CodecJPEG, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ip.scale != 1 {
		t.Fatalf("DisableScaledDecode chose scale 1/%d", ip.scale)
	}
}

// TestIngestPlanROIGeometry: with ROIDecode the compiled plan precomputes
// the MCU-aligned region once, and its residual chain geometry matches
// what the decoder actually produces for both subsampling modes.
func TestIngestPlanROIGeometry(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, ROIDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	m := data.RenderImage(rng, 0, 2, 120) // 120x120, above the 16px target
	for _, sub := range []jpeg.Subsampling{jpeg.Sub444, jpeg.Sub420} {
		enc := jpeg.Encode(m, jpeg.EncodeOptions{Quality: 92, Subsampling: sub})
		var dec jpeg.Decoder
		w, h, err := dec.Parse(enc)
		if err != nil {
			t.Fatal(err)
		}
		ip, err := rt.ingestFor(w, h, dec.MCUSize(), CodecJPEG, 16)
		if err != nil {
			t.Fatal(err)
		}
		if ip.roi == nil {
			t.Fatal("ROIDecode plan carries no ROI")
		}
		out, region, _, err := dec.Decode(jpeg.DecodeOptions{ROI: ip.roi, Scale: ip.scale})
		if err != nil {
			t.Fatal(err)
		}
		wantW, wantH := img.ScaledDims(region.W(), region.H(), ip.scale)
		if out.W != wantW || out.H != wantH {
			t.Fatalf("sub %v: decoded %dx%d, plan geometry %dx%d", sub, out.W, out.H, wantW, wantH)
		}
		// The residual chain must accept exactly this geometry.
		ex := preproc.NewExecutor()
		dst := tensor.New(3, 16, 16)
		if err := ex.Execute(ip.resid, out, dst); err != nil {
			t.Fatalf("sub %v: residual chain rejects decoded image: %v", sub, err)
		}
	}
}

// TestCompiledIngestMatchesNaivePath: the compiled ingest path (single
// header parse, pooled decode buffers, cached plans, scaled decode) must
// produce predictions identical to naively decoding each image with the
// same options through the one-shot codec API and running the residual
// chain with a fresh executor — the lowering changes execution strategy,
// never semantics.
func TestCompiledIngestMatchesNaivePath(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	for _, cfg := range []RuntimeConfig{
		{InputRes: 16, BatchSize: 8, Workers: 2},
		{InputRes: 16, BatchSize: 8, Workers: 2, ROIDecode: true},
		{InputRes: 16, BatchSize: 8, Workers: 2, DisableScaledDecode: true},
	} {
		rt, err := NewRuntime(clf.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inputs, _ := renderLargeInputs(24, 96)
		res, err := rt.Classify(inputs)
		if err != nil {
			t.Fatal(err)
		}
		// Naive reference: one-shot decode per image with the plan's
		// options, fresh executor, reference model forward.
		for i, in := range inputs {
			var dec jpeg.Decoder
			w, h, err := dec.Parse(in.Data)
			if err != nil {
				t.Fatal(err)
			}
			ip, err := rt.ingestFor(w, h, dec.MCUSize(), CodecJPEG, 16)
			if err != nil {
				t.Fatal(err)
			}
			m, _, _, err := jpeg.DecodeWithOptions(in.Data, jpeg.DecodeOptions{ROI: ip.roi, Scale: ip.scale})
			if err != nil {
				t.Fatal(err)
			}
			batch := tensor.New(1, 3, 16, 16)
			one := tensor.New(3, 16, 16)
			if err := preproc.NewExecutor().Execute(ip.resid, m, one); err != nil {
				t.Fatal(err)
			}
			copy(batch.Data, one.Data)
			want := clf.Model.Predict(batch)[0]
			if res.Predictions[i] != want {
				t.Fatalf("cfg %+v image %d: engine predicted %d, naive path %d",
					cfg, i, res.Predictions[i], want)
			}
		}
	}
}

// TestScaledIngestPreservesAccuracy: serving with reduced-resolution
// decode must classify the (trivially separable) large test images as
// accurately as full decode.
func TestScaledIngestPreservesAccuracy(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	inputs, _ := renderLargeInputs(40, 128)
	labels := make([]int, len(inputs))
	for i := range labels {
		labels[i] = i % 2
	}
	acc := func(cfg RuntimeConfig) float64 {
		rt, err := NewRuntime(clf.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Classify(inputs)
		if err != nil {
			t.Fatal(err)
		}
		correct := 0
		for i, p := range res.Predictions {
			if p == labels[i] {
				correct++
			}
		}
		return float64(correct) / float64(len(inputs))
	}
	full := acc(RuntimeConfig{InputRes: 16, BatchSize: 8, DisableScaledDecode: true})
	scaled := acc(RuntimeConfig{InputRes: 16, BatchSize: 8})
	if scaled < full-0.05 {
		t.Fatalf("scaled ingest accuracy %.2f vs full-decode %.2f", scaled, full)
	}
}

// TestIngestWarmPathAllocates0: one warm prep invocation — header parse,
// scaled decode into the pooled image, residual chain into the pooled
// tensor — must perform zero heap allocations. This is the allocs/op
// regression guard for the serving-mode ingest hot path.
func TestIngestWarmPathAllocates0(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	for _, cfg := range []RuntimeConfig{
		{InputRes: 16},
		{InputRes: 16, ROIDecode: true},
	} {
		rt, err := NewRuntime(clf.Model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		inputs, _ := renderLargeInputs(1, 96)
		prep := rt.prepFunc()
		ws := &engine.WorkerState{}
		job := engine.Job{Index: 0, Tag: &classifyReq{inputs: mediaInputs(inputs), preds: make([]int, 1), entry: rt.entries[0]}}
		out := tensor.New(3, 16, 16)
		run := func() {
			if err := prep(ws, job, out); err != nil {
				t.Fatal(err)
			}
		}
		run() // warm the decoder, executor scratch and plan cache
		alloctest.Run(t, "smol.Runtime.prepJob", 0, run,
			"smol/internal/codec/jpeg.Decoder.Parse", "smol/internal/codec/jpeg.Decoder.Decode")
	}
}
