package smol

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"smol/internal/analysis/alloctest"
	"smol/internal/codec/vid"
	"smol/internal/img"
)

// selectServer builds a warm server over the shared tiny classifier with
// the cascade enabled or disabled.
func selectServer(t *testing.T, cfg RuntimeConfig) *Server {
	t.Helper()
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// assertSelectEqual fails unless two selection results returned the same
// frames with the same proxy confidences.
func assertSelectEqual(t *testing.T, label string, got, want SelectResult) {
	t.Helper()
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("%s: cascade returned %d frames %v, full scan %d %v",
			label, len(got.Frames), got.Frames, len(want.Frames), want.Frames)
	}
	for i := range want.Frames {
		if got.Frames[i] != want.Frames[i] {
			t.Fatalf("%s: frame %d is %d, full scan %d", label, i, got.Frames[i], want.Frames[i])
		}
		if got.Scores[i] != want.Scores[i] {
			t.Fatalf("%s: frame %d scored %g, full scan %g — cached and live proxy diverge",
				label, want.Frames[i], got.Scores[i], want.Scores[i])
		}
	}
}

// TestSelectMatchesFullScan is the cascade's acceptance equivalence: the
// proxy cascade (score sidecar, GOP pruning, ranked batched verification,
// early termination) must return exactly the frame set of the
// DisableProxyCascade full scan — which verifies every sampled frame and
// then applies the same predicate and top-K — across strides that cross
// GOP boundaries, LIMITs below/above/without the match count, absent
// classes, and confidence floors.
func TestSelectMatchesFullScan(t *testing.T) {
	frames, _ := renderClassVideo(t, 53, 48)
	const gop = 6
	enc := encodeClassVideo(t, frames, 85, gop)
	_, v := openTestStore(t, enc, IngestOptions{})
	ctx := context.Background()
	base := RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2}
	cascadeCfg := base
	fullCfg := base
	fullCfg.DisableProxyCascade = true
	cascade := selectServer(t, cascadeCfg)
	full := selectServer(t, fullCfg)

	for _, stride := range []int{1, 3, 5, 7} {
		for _, limit := range []int{1, 5, 0} {
			for _, class := range []int{0, 1, 3} {
				for _, minConf := range []float64{0, 0.6} {
					label := fmt.Sprintf("stride=%d limit=%d class=%d minconf=%g", stride, limit, class, minConf)
					opts := SelectOpts{Class: class, MinConf: minConf, Limit: limit, Stride: stride, Deblock: DeblockOn}
					want, err := full.SelectVideo(ctx, v, opts)
					if err != nil {
						t.Fatalf("%s: full scan: %v", label, err)
					}
					got, err := cascade.SelectVideo(ctx, v, opts)
					if err != nil {
						t.Fatalf("%s: cascade: %v", label, err)
					}
					assertSelectEqual(t, label, got, want)
					if limit > 0 && len(got.Frames) > limit {
						t.Fatalf("%s: %d frames over the limit", label, len(got.Frames))
					}
					samples := (len(frames) + stride - 1) / stride
					if want.OracleInvocations != samples {
						t.Fatalf("%s: full scan verified %d frames, want every sample (%d)",
							label, want.OracleInvocations, samples)
					}
					if got.OracleInvocations > want.OracleInvocations {
						t.Fatalf("%s: cascade verified %d frames, more than the full scan's %d",
							label, got.OracleInvocations, want.OracleInvocations)
					}
					if got.GOPsTouched > got.GOPsTotal || want.GOPsTouched > want.GOPsTotal {
						t.Fatalf("%s: GOPs touched (%d, %d) above total %d",
							label, got.GOPsTouched, want.GOPsTouched, got.GOPsTotal)
					}
				}
			}
		}
	}
}

// TestSelectRenditions: with a strict accuracy floor the undersized
// rendition is excluded from verification (primary stream only) while the
// proxy still reads the cheapest rendition — and the cascade stays
// equivalent to the full scan under that split plan.
func TestSelectRenditions(t *testing.T) {
	frames, _ := renderClassVideo(t, 24, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	_, v := openTestStore(t, enc, IngestOptions{RenditionShortEdges: []int{12}})
	if len(v.Renditions()) != 1 {
		t.Fatalf("%d renditions, want 1", len(v.Renditions()))
	}
	ctx := context.Background()
	base := RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2}
	fullCfg := base
	fullCfg.DisableProxyCascade = true
	cascade := selectServer(t, base)
	full := selectServer(t, fullCfg)
	for _, limit := range []int{2, 0} {
		for _, minConf := range []float64{0, 0.6} {
			label := fmt.Sprintf("limit=%d minconf=%g", limit, minConf)
			opts := SelectOpts{
				Class: 1, MinConf: minConf, Limit: limit,
				QoS: QoS{MinAccuracy: 1}, Deblock: DeblockOn,
			}
			want, err := full.SelectVideo(ctx, v, opts)
			if err != nil {
				t.Fatalf("%s: full scan: %v", label, err)
			}
			got, err := cascade.SelectVideo(ctx, v, opts)
			if err != nil {
				t.Fatalf("%s: cascade: %v", label, err)
			}
			if got.Plan.Verify.Stream != 0 {
				t.Fatalf("%s: strict floor verified on stream %d, want the primary", label, got.Plan.Verify.Stream)
			}
			if got.Plan.ProxyStream != 1 {
				t.Fatalf("%s: proxy reads stream %d, want the cheap rendition (1)", label, got.Plan.ProxyStream)
			}
			assertSelectEqual(t, label, got, want)
		}
	}
}

// TestSelectConcurrent: concurrent selection queries with different
// parameters through one warm server must each match their own
// sequentially-computed baseline.
func TestSelectConcurrent(t *testing.T) {
	frames, _ := renderClassVideo(t, 48, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	_, v := openTestStore(t, enc, IngestOptions{ProxyScores: true})
	ctx := context.Background()
	srv := selectServer(t, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})

	queries := []SelectOpts{
		{Class: 0, Limit: 3, Deblock: DeblockOn},
		{Class: 1, Limit: 1, Stride: 2, Deblock: DeblockOn},
		{Class: 1, MinConf: 0.6, Limit: 0, Deblock: DeblockOn},
		{Class: 0, Limit: 8, Stride: 3, Deblock: DeblockOn},
	}
	baselines := make([]SelectResult, len(queries))
	for i, q := range queries {
		res, err := srv.SelectVideo(ctx, v, q)
		if err != nil {
			t.Fatalf("baseline %d: %v", i, err)
		}
		baselines[i] = res
	}
	var wg sync.WaitGroup
	results := make([]SelectResult, len(queries))
	errs := make([]error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q SelectOpts) {
			defer wg.Done()
			results[i], errs[i] = srv.SelectVideo(ctx, v, q)
		}(i, q)
	}
	wg.Wait()
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("concurrent query %d: %v", i, errs[i])
		}
		assertSelectEqual(t, fmt.Sprintf("concurrent query %d", i), results[i], baselines[i])
	}
}

// TestSelectScoreSidecarLifecycle: ingest-time score materialization must
// serve the first query from the sidecar; a corrupted sidecar must degrade
// to a live proxy pass (same answer, ScoresCached=false) that re-persists
// for the query after it.
func TestSelectScoreSidecarLifecycle(t *testing.T) {
	frames, _ := renderClassVideo(t, 36, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	dir := t.TempDir()
	ms, err := OpenMediaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.IngestVideo("clip", enc, IngestOptions{ProxyScores: true}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	srv := selectServer(t, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	opts := SelectOpts{Class: 1, Limit: 4, Deblock: DeblockOn}

	v, _ := ms.Video("clip")
	first, err := srv.SelectVideo(ctx, v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.ScoresCached || first.ProxyInvocations != 0 {
		t.Fatalf("ingest-materialized scores not used: cached=%v, %d proxy invocations",
			first.ScoresCached, first.ProxyInvocations)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "clip.scr")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ms2, err := OpenMediaStore(dir)
	if err != nil {
		t.Fatalf("corrupt score sidecar failed the store open: %v", err)
	}
	defer ms2.Close()
	v2, ok := ms2.Video("clip")
	if !ok {
		t.Fatal("video lost alongside its score sidecar")
	}
	second, err := srv.SelectVideo(ctx, v2, opts)
	if err != nil {
		t.Fatalf("query after sidecar corruption: %v", err)
	}
	if second.ScoresCached || second.ProxyInvocations == 0 {
		t.Fatalf("corrupt sidecar did not fall back to a live proxy pass: cached=%v, %d invocations",
			second.ScoresCached, second.ProxyInvocations)
	}
	assertSelectEqual(t, "after corruption", second, first)
	// The live pass re-persisted: the next query is cached again.
	third, err := srv.SelectVideo(ctx, v2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !third.ScoresCached {
		t.Fatal("live pass did not re-persist the score table")
	}
	assertSelectEqual(t, "after re-persist", third, first)
}

// TestSelectValidation: malformed queries fail before any planning or
// decoding.
func TestSelectValidation(t *testing.T) {
	frames, _ := renderClassVideo(t, 12, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	_, v := openTestStore(t, enc, IngestOptions{})
	srv := selectServer(t, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	ctx := context.Background()
	if _, err := srv.SelectVideo(ctx, nil, SelectOpts{Class: 1}); err == nil {
		t.Fatal("nil video accepted")
	}
	if _, err := srv.SelectVideo(ctx, v, SelectOpts{Class: -1}); err == nil {
		t.Fatal("negative class accepted")
	}
	if _, err := srv.SelectVideo(ctx, v, SelectOpts{Class: 1, MinConf: 1.5}); err == nil {
		t.Fatal("confidence floor above 1 accepted")
	}
}

// TestSelectVerifierWarmPathAllocates pins the verification stage's decode
// hot path: re-seeking and decoding ranked candidates over a warm decoder
// and frame pool must not allocate per candidate.
func TestSelectVerifierWarmPathAllocates(t *testing.T) {
	frames, _ := renderClassVideo(t, 30, 32)
	enc := encodeClassVideo(t, frames, 85, 5)
	dec, err := vid.NewDecoder(enc, vid.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	index, err := vid.IndexGOPs(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.SetGOPIndex(index); err != nil {
		t.Fatal(err)
	}
	cr := &classifyReq{frames: make([]*img.Image, 1), framePool: &sync.Pool{}}
	ver := &selectVerifier{dec: dec, cr: cr}
	// Candidates in ranked (non-monotonic) frame order, spanning GOPs both
	// forward and backward — the cascade's actual access pattern.
	cands := []int{14, 2, 27, 9, 21, 4}
	ci := 0
	step := func() {
		if err := ver.decodeCandidate(0, cands[ci%len(cands)]); err != nil {
			t.Fatal(err)
		}
		cr.framePool.Put(cr.frames[0])
		cr.frames[0] = nil
		ci++
	}
	for range cands {
		step() // warm the decoder, every target GOP, and the frame pool
	}
	alloctest.Run(t, "smol.selectVerifier.decodeCandidate", 1, step)
}
