package smol_test

import (
	"fmt"

	"smol"
)

// ExampleOptimize searches the cross product of networks and natively
// available input formats with the preprocessing-aware cost model and
// prints the Pareto frontier — the paper's core planning loop.
func ExampleOptimize() {
	dnns := []smol.DNNChoice{
		{Name: "resnet-18", InputRes: 224, Accuracy: 0.682},
		{Name: "resnet-50", InputRes: 224, Accuracy: 0.7434},
	}
	formats := []smol.Format{
		{Name: "full-jpeg", Kind: smol.FormatJPEG, W: 500, H: 375, Quality: 90},
		{Name: "thumb-png", Kind: smol.FormatPNG, W: 215, H: 161, Lossless: true},
	}
	front, err := smol.Optimize(dnns, formats, smol.DefaultEnv())
	if err != nil {
		panic(err)
	}
	for _, e := range front {
		fmt.Printf("%s: %.0f im/s at %.1f%%\n", e.Plan, e.Throughput, 100*e.Accuracy)
	}
	// Output:
	// resnet-50@224 on thumb-png (cpu+3-accel): 1992 im/s at 74.3%
}

// ExampleSelect picks the fastest plan that still meets an accuracy
// floor — the accuracy-constrained throughput deployment of §4.
func ExampleSelect() {
	dnns := []smol.DNNChoice{
		{Name: "resnet-18", InputRes: 224, Accuracy: 0.682},
		{Name: "resnet-50", InputRes: 224, Accuracy: 0.7434},
	}
	formats := []smol.Format{
		{Name: "full-jpeg", Kind: smol.FormatJPEG, W: 500, H: 375, Quality: 90},
		{Name: "thumb-png", Kind: smol.FormatPNG, W: 215, H: 161, Lossless: true},
	}
	best, err := smol.Select(dnns, formats, smol.DefaultEnv(),
		smol.Constraint{MinAccuracy: 0.74})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", best.Plan)
	// Output:
	// resnet-50@224 on thumb-png (cpu+3-accel)
}

// ExampleBatchForLatency tunes the accelerator batch size down until the
// worst-case per-image latency fits a 30ms budget — the §3.1
// latency-constrained extension.
func ExampleBatchForLatency() {
	dnns := []smol.DNNChoice{{Name: "resnet-50", InputRes: 224, Accuracy: 0.7434}}
	formats := []smol.Format{{Name: "thumb-png", Kind: smol.FormatPNG, W: 215, H: 161, Lossless: true}}
	front, err := smol.Optimize(dnns, formats, smol.DefaultEnv())
	if err != nil {
		panic(err)
	}
	plan := front[len(front)-1].Plan
	batch, tput, err := smol.BatchForLatency(plan, smol.DefaultEnv(), 30_000 /* us */)
	if err != nil {
		panic(err)
	}
	fmt.Printf("batch %d at %.0f im/s\n", batch, tput)
	// Output:
	// batch 32 at 1992 im/s
}
