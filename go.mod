module smol

go 1.22
