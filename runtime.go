package smol

import (
	"fmt"
	"sync"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/engine"
	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// RuntimeConfig configures the execution engine for real (in-process)
// inference over encoded images.
type RuntimeConfig struct {
	// Workers is the number of preprocessing goroutines (0 = GOMAXPROCS).
	Workers int
	// BatchSize is the model batch size (0 = 32).
	BatchSize int
	// InputRes is the model's square input resolution.
	InputRes int
	// Mean and Std are the normalization constants; zero Std means the
	// plain [0,1] scaling used by models trained with internal/data.
	Mean, Std [3]float32
	// ROIDecode enables partial JPEG decoding of the central crop region
	// (Algorithm 1).
	ROIDecode bool
	// Opts toggles engine optimizations (all on by default).
	Opts engine.Options
}

// Runtime executes classification over encoded images with a trained
// model, using the pipelined engine: decode -> preprocess -> batch ->
// model forward.
type Runtime struct {
	cfg   RuntimeConfig
	model *nn.Model
}

// NewRuntime wraps a trained model (e.g. from LoadClassifier or
// TrainClassifier) for pipelined batch inference.
func NewRuntime(model *nn.Model, cfg RuntimeConfig) (*Runtime, error) {
	if model == nil {
		return nil, fmt.Errorf("smol: nil model")
	}
	if cfg.InputRes <= 0 {
		return nil, fmt.Errorf("smol: InputRes is required")
	}
	if cfg.Std == ([3]float32{}) {
		cfg.Std = [3]float32{1, 1, 1}
	}
	return &Runtime{cfg: cfg, model: model}, nil
}

// EncodedImage is one input: bytes in one of the supported codecs.
type EncodedImage struct {
	// Data is the encoded image (JPEG from this repo's codec, or spng).
	Data []byte
	// PNG marks the data as spng-encoded rather than JPEG.
	PNG bool
}

// ClassifyResult reports predictions in input order plus engine statistics.
type ClassifyResult struct {
	Predictions []int
	Stats       engine.Stats
}

// Classify runs the full pipeline over the encoded inputs.
func (r *Runtime) Classify(inputs []EncodedImage) (ClassifyResult, error) {
	res := r.cfg.InputRes
	preds := make([]int, len(inputs))

	prep := func(ws *engine.WorkerState, job engine.Job, out *tensor.Tensor) error {
		in := inputs[job.Index]
		var m *img.Image
		var err error
		switch {
		case in.PNG:
			m, err = spng.Decode(in.Data)
		case r.cfg.ROIDecode:
			w, h, herr := jpeg.DecodeHeader(in.Data)
			if herr != nil {
				return herr
			}
			short := res * 256 / 224
			sw, sh := img.AspectPreservingSize(w, h, short)
			// Map the post-resize central crop back to source pixels.
			crop := img.CenterCropRect(sw, sh, res, res)
			scaleX := float64(w) / float64(sw)
			scaleY := float64(h) / float64(sh)
			roi := img.Rect{
				X0: int(float64(crop.X0) * scaleX), Y0: int(float64(crop.Y0) * scaleY),
				X1: int(float64(crop.X1)*scaleX) + 1, Y1: int(float64(crop.Y1)*scaleY) + 1,
			}
			m, _, _, err = jpeg.DecodeWithOptions(in.Data, jpeg.DecodeOptions{ROI: &roi})
		default:
			m, err = jpeg.Decode(in.Data)
		}
		if err != nil {
			return err
		}
		ex, _ := ws.Scratch.(*preproc.Executor)
		if ex == nil {
			ex = preproc.NewExecutor()
			ws.Scratch = ex
		}
		spec := preproc.Spec{
			InW: m.W, InH: m.H,
			ResizeShort: res, CropW: res, CropH: res,
			Mean: r.cfg.Mean, Std: r.cfg.Std,
		}
		plan, err := preproc.Optimize(spec)
		if err != nil {
			return err
		}
		return ex.Execute(plan, m, out)
	}

	// The model is one compute resource (as a physical accelerator is) and
	// its layers cache per-forward state, so execution serializes; multiple
	// engine streams still overlap batch assembly with execution.
	var execMu sync.Mutex
	exec := func(batch *tensor.Tensor, indices []int) error {
		execMu.Lock()
		out := r.model.Predict(batch)
		execMu.Unlock()
		for i, idx := range indices {
			preds[idx] = out[i]
		}
		return nil
	}

	eng, err := engine.New(engine.Config{
		Workers:     r.cfg.Workers,
		BatchSize:   r.cfg.BatchSize,
		SampleShape: [3]int{3, res, res},
		Opts:        r.cfg.Opts,
	}, prep, exec)
	if err != nil {
		return ClassifyResult{}, err
	}
	jobs := make([]engine.Job, len(inputs))
	for i := range jobs {
		jobs[i] = engine.Job{Index: i}
	}
	stats, err := eng.Run(jobs)
	if err != nil {
		return ClassifyResult{}, err
	}
	return ClassifyResult{Predictions: preds, Stats: stats}, nil
}
