package smol

import (
	"context"
	"fmt"
	"sync"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/engine"
	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// RuntimeConfig configures the execution engine for real (in-process)
// inference over encoded images.
type RuntimeConfig struct {
	// Workers is the number of preprocessing goroutines (0 = GOMAXPROCS).
	Workers int
	// BatchSize is the model batch size (0 = 32).
	BatchSize int
	// InputRes is the model's square input resolution.
	InputRes int
	// Mean and Std are the normalization constants; zero Std means the
	// plain [0,1] scaling used by models trained with internal/data.
	Mean, Std [3]float32
	// ROIDecode enables partial JPEG decoding of the central crop region
	// (Algorithm 1).
	ROIDecode bool
	// DisableScaledDecode turns off DCT-domain reduced-resolution JPEG
	// decoding. By default the ingest planner may decode at 1/2, 1/4 or
	// 1/8 resolution when the model's input resolution makes that the
	// cheapest joint decode+preprocess plan (the paper's low-resolution
	// decode optimization, §5); disable it to force full-resolution decode
	// for A/B comparison.
	DisableScaledDecode bool
	// ExecParallel bounds how many model forwards may run at once on the
	// compiled inference path (0 = 2, matching the engine's default stream
	// count). Each forward already parallelizes its GEMMs across
	// GOMAXPROCS, so this knob trades arena memory and scheduler pressure
	// for stream overlap, not raw compute. The reference path always
	// serializes regardless.
	ExecParallel int
	// DisableCompiled forces the reference Model.Forward execution path
	// even when the model compiles, for A/B comparison and tests.
	DisableCompiled bool
	// Opts toggles engine optimizations (all on by default).
	Opts engine.Options
}

// Runtime executes classification over encoded images with a trained
// model, using the pipelined engine: decode -> preprocess -> batch ->
// model forward. Use Classify for one-shot batches, or Serve to hold a
// warm engine that many concurrent callers share.
type Runtime struct {
	cfg   RuntimeConfig
	model *nn.Model

	// plan is the compiled inference path (folded batch-norm, fused GEMM
	// epilogues, recycled activation arenas). It is immutable and
	// reentrant, so execution only needs the bounded execSem below; nil
	// when compilation was disabled or the model shape is unsupported.
	plan *nn.InferencePlan
	// execSem bounds concurrent compiled forwards (configurable exec
	// parallelism), letting multiple engine streams overlap execution.
	execSem chan struct{}
	// preds recycles per-batch prediction buffers (as *[]int to avoid
	// interface boxing), keeping the compiled exec path allocation-free.
	preds sync.Pool

	// The reference model's layers cache per-forward state, so the
	// fallback path serializes behind execMu (one mutable compute
	// resource); engine streams still overlap batch assembly with it.
	execMu sync.Mutex

	// plans caches compiled ingest plans keyed by input class (codec,
	// encoded dimensions, MCU geometry), so the joint decode+preprocess
	// plan search and ROI mapping run once per distinct input shape
	// instead of once per image on the hot prep path.
	planMu sync.RWMutex
	plans  map[ingestKey]*ingestPlan
}

// ingestKey identifies one class of inputs a compiled ingest plan covers.
// The MCU edge length matters because ROI regions align outward to the MCU
// grid, so two JPEGs with equal dimensions but different chroma subsampling
// decode to different region geometries.
type ingestKey struct {
	w, h, mcu int
	png       bool
}

// ingestPlan is the compiled decode+preprocess recipe for one input class:
// the jointly optimized decode scale, the precomputed (plan-time) ROI, and
// the residual operator chain that runs on the decoded image. It is
// immutable and shared across workers; prepFunc executes it with per-worker
// reusable buffers.
type ingestPlan struct {
	// full is the complete optimized plan, decode op included (reports,
	// cost accounting).
	full preproc.Plan
	// resid is full minus the decode op: what the preproc executor runs on
	// the image the codec already produced at the plan's scale.
	resid preproc.Plan
	// scale is the decode scale lowered into jpeg.DecodeOptions.Scale.
	scale int
	// roi, when non-nil, is the central-crop-covering region lowered into
	// jpeg.DecodeOptions.ROI. Decode options only read it, so sharing the
	// pointer across workers is safe.
	roi *img.Rect
}

// NewRuntime wraps a trained model (e.g. from LoadClassifier or
// TrainClassifier) for pipelined batch inference.
//
// Unless DisableCompiled is set, the model's weights (and batch-norm
// statistics) are snapshotted here into an immutable compiled plan:
// mutating the model afterwards — further training, reloading weights —
// does not affect this runtime. Construct a new Runtime after updating a
// model.
func NewRuntime(model *nn.Model, cfg RuntimeConfig) (*Runtime, error) {
	if model == nil {
		return nil, fmt.Errorf("smol: nil model")
	}
	if cfg.InputRes <= 0 {
		return nil, fmt.Errorf("smol: InputRes is required")
	}
	if cfg.Std == ([3]float32{}) {
		cfg.Std = [3]float32{1, 1, 1}
	}
	r := &Runtime{cfg: cfg, model: model, plans: make(map[ingestKey]*ingestPlan)}
	if !cfg.DisableCompiled {
		// Compilation fails only for layer shapes the plan vocabulary does
		// not cover; those models fall back to the serialized reference path.
		if plan, err := nn.Compile(model); err == nil {
			r.plan = plan
		}
	}
	par := cfg.ExecParallel
	if par <= 0 {
		par = 2
	}
	r.execSem = make(chan struct{}, par)
	return r, nil
}

// Compiled reports whether this runtime executes batches through the
// compiled inference plan (parallel) rather than the serialized reference
// model.
func (r *Runtime) Compiled() bool { return r.plan != nil }

// EncodedImage is one input: bytes in one of the supported codecs.
type EncodedImage struct {
	// Data is the encoded image (JPEG from this repo's codec, or spng).
	Data []byte
	// PNG marks the data as spng-encoded rather than JPEG.
	PNG bool
}

// ClassifyResult reports predictions in input order plus engine statistics.
type ClassifyResult struct {
	Predictions []int
	Stats       engine.Stats
}

// classifyReq is the per-request state threaded through the engine via
// Job.Tag: the request's inputs and its prediction slots. Many requests
// interleave in one warm pipeline; Refs route each sample back here.
type classifyReq struct {
	inputs []EncodedImage
	preds  []int
}

// maxCachedPlans bounds the plan cache: input dimensions come from
// user-supplied images, and a resident Server must not grow memory without
// bound under adversarially varied resolutions. Beyond the cap plans are
// still computed, just not retained.
const maxCachedPlans = 1024

// ingestFor returns the compiled ingest plan for one input class,
// computing and caching it on first sight. Plan compilation runs the joint
// decode+preprocess optimization: the ROI (when enabled) is mapped and
// MCU-aligned once, the decode scale is chosen together with the residual
// resize/crop/normalize chain by preproc.Optimize, and the result is an
// immutable recipe prepFunc executes per image with pooled buffers.
func (r *Runtime) ingestFor(w, h, mcu int, png bool) (*ingestPlan, error) {
	key := ingestKey{w: w, h: h, mcu: mcu, png: png}
	r.planMu.RLock()
	ip, ok := r.plans[key]
	r.planMu.RUnlock()
	if ok {
		return ip, nil
	}
	res := r.cfg.InputRes
	decW, decH := w, h
	var roi *img.Rect
	if !png && r.cfg.ROIDecode {
		short := res * 256 / 224
		sw, sh := img.AspectPreservingSize(w, h, short)
		// Map the post-resize central crop back to source pixels.
		crop := img.CenterCropRect(sw, sh, res, res)
		scaleX := float64(w) / float64(sw)
		scaleY := float64(h) / float64(sh)
		roi = &img.Rect{
			X0: int(float64(crop.X0) * scaleX), Y0: int(float64(crop.Y0) * scaleY),
			X1: int(float64(crop.X1)*scaleX) + 1, Y1: int(float64(crop.Y1)*scaleY) + 1,
		}
		// The decoder reconstructs the MCU-aligned cover of the ROI; use
		// the codec's own mapping so the plan's geometry matches the
		// decoded image exactly.
		region := jpeg.AlignedRegion(*roi, w, h, mcu)
		decW, decH = region.W(), region.H()
	}
	spec := preproc.Spec{
		InW: decW, InH: decH,
		ResizeShort: res, CropW: res, CropH: res,
		Mean: r.cfg.Mean, Std: r.cfg.Std,
	}
	if !png && !r.cfg.DisableScaledDecode {
		spec.DecodeScales = jpegDecodeScales
	}
	plan, err := preproc.Optimize(spec)
	if err != nil {
		return nil, err
	}
	ip = &ingestPlan{
		full:  plan,
		resid: plan.ResidualAfterDecode(),
		scale: plan.DecodeScale(),
		roi:   roi,
	}
	r.planMu.Lock()
	// A concurrent worker may have won the race for this key; keep the
	// first entry so all workers share one plan value.
	if cached, ok := r.plans[key]; ok {
		ip = cached
	} else if len(r.plans) < maxCachedPlans {
		r.plans[key] = ip
	}
	r.planMu.Unlock()
	return ip, nil
}

// jpegDecodeScales are the decode factors the JPEG codec offers (full plus
// the reduced 4x4/2x2/1x1 IDCT reconstructions).
var jpegDecodeScales = jpeg.SupportedScales()

// ingestState is the per-worker mutable half of the ingest path: the
// reusable JPEG decoder (parsed headers, Huffman tables, planar scratch),
// the pooled decode output image, and the preproc executor's scratch
// buffers. The compiled ingestPlan supplies the immutable recipe.
type ingestState struct {
	ex  *preproc.Executor
	dec jpeg.Decoder
	// buf is the decoder's reused output image (jpeg.DecodeOptions.Dst).
	buf *img.Image
}

// prepFunc builds the engine preprocessing callback: look up (or compile)
// the input class's ingest plan, decode once at the plan's scale/ROI
// straight into worker-owned pooled buffers, then run the residual preproc
// chain into the engine's pooled output tensor. The JPEG headers are
// parsed exactly once per image (the Decoder carries the parse into the
// decode), and a warm worker performs no per-image allocations.
func (r *Runtime) prepFunc() engine.PrepFunc {
	return func(ws *engine.WorkerState, job engine.Job, out *tensor.Tensor) error {
		cr, ok := job.Tag.(*classifyReq)
		if !ok {
			return fmt.Errorf("smol: job %d carries no request state", job.Index)
		}
		in := cr.inputs[job.Index]
		st, _ := ws.Scratch.(*ingestState)
		if st == nil {
			st = &ingestState{ex: preproc.NewExecutor()}
			ws.Scratch = st
		}
		if in.PNG {
			m, err := spng.Decode(in.Data)
			if err != nil {
				return err
			}
			ip, err := r.ingestFor(m.W, m.H, 0, true)
			if err != nil {
				return err
			}
			return st.ex.Execute(ip.resid, m, out)
		}
		w, h, err := st.dec.Parse(in.Data)
		if err != nil {
			return err
		}
		ip, err := r.ingestFor(w, h, st.dec.MCUSize(), false)
		if err != nil {
			return err
		}
		m, _, _, err := st.dec.Decode(jpeg.DecodeOptions{
			ROI:   ip.roi,
			Scale: ip.scale,
			Dst:   st.buf,
		})
		if err != nil {
			return err
		}
		st.buf = m
		return st.ex.Execute(ip.resid, m, out)
	}
}

// execFunc builds the engine execution callback: a model forward whose
// outputs are routed to each sample's originating request. With a compiled
// plan, forwards from different engine streams run concurrently up to the
// ExecParallel bound; the reference path serializes behind execMu because
// the model's layers carry mutable per-forward caches.
func (r *Runtime) execFunc() engine.BatchFunc {
	return func(batch *tensor.Tensor, refs []engine.Ref) error {
		var out []int
		var pooled *[]int
		if r.plan != nil {
			n := batch.Shape[0]
			pooled, _ = r.preds.Get().(*[]int)
			if pooled == nil || cap(*pooled) < n {
				pooled = new([]int)
				*pooled = make([]int, n)
			}
			out = (*pooled)[:n]
			r.execSem <- struct{}{}
			r.plan.PredictInto(batch, out)
			<-r.execSem
		} else {
			r.execMu.Lock()
			out = r.model.Predict(batch)
			r.execMu.Unlock()
		}
		for i, ref := range refs {
			cr, ok := ref.Tag.(*classifyReq)
			if !ok {
				return fmt.Errorf("smol: sample %d carries no request state", ref.Index)
			}
			cr.preds[ref.Index] = out[i]
		}
		if pooled != nil {
			r.preds.Put(pooled)
		}
		return nil
	}
}

// engineConfig maps the runtime configuration onto the engine topology.
func (r *Runtime) engineConfig() engine.Config {
	return engine.Config{
		Workers:     r.cfg.Workers,
		BatchSize:   r.cfg.BatchSize,
		SampleShape: [3]int{3, r.cfg.InputRes, r.cfg.InputRes},
		Opts:        r.cfg.Opts,
	}
}

// Classify runs the full pipeline over the encoded inputs. It is a
// one-shot wrapper over the streaming core: a pipeline is brought up, the
// inputs stream through it, and it is torn down. Callers serving many
// requests should use Serve instead and keep the engine warm.
func (r *Runtime) Classify(inputs []EncodedImage) (ClassifyResult, error) {
	srv, err := r.Serve()
	if err != nil {
		return ClassifyResult{}, err
	}
	defer srv.Close()
	return srv.Classify(context.Background(), inputs)
}
