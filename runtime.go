package smol

import (
	"container/list"
	"context"
	"fmt"
	goruntime "runtime"
	"sync"

	"smol/internal/codec/jpeg"
	"smol/internal/codec/spng"
	"smol/internal/engine"
	"smol/internal/hw"
	"smol/internal/img"
	"smol/internal/nn"
	"smol/internal/preproc"
	"smol/internal/tensor"
)

// RuntimeConfig configures the execution engine for real (in-process)
// inference over encoded images.
type RuntimeConfig struct {
	// Workers is the number of preprocessing goroutines (0 = GOMAXPROCS).
	Workers int
	// BatchSize is the model batch size (0 = 32).
	BatchSize int
	// InputRes is the model's square input resolution. Required by
	// NewRuntime (single model); ignored by NewZooRuntime, where every zoo
	// entry carries its own resolution.
	InputRes int
	// Mean and Std are the normalization constants; zero Std means the
	// plain [0,1] scaling used by models trained with internal/data.
	Mean, Std [3]float32
	// QoS is the default serving target applied to Classify calls that do
	// not supply their own (see Server.ClassifyQoS). The zero value asks
	// for maximum throughput with no accuracy floor.
	QoS QoS
	// ROIDecode enables partial JPEG decoding of the central crop region
	// (Algorithm 1).
	ROIDecode bool
	// DisableScaledDecode turns off DCT-domain reduced-resolution JPEG
	// decoding. By default the ingest planner may decode at 1/2, 1/4 or
	// 1/8 resolution when the model's input resolution makes that the
	// cheapest joint decode+preprocess plan (the paper's low-resolution
	// decode optimization, §5); disable it to force full-resolution decode
	// for A/B comparison.
	DisableScaledDecode bool
	// ExecParallel bounds how many model forwards may run at once on the
	// compiled inference path (0 = 2, matching the engine's default stream
	// count). Each forward already parallelizes its GEMMs across
	// GOMAXPROCS, so this knob trades arena memory and scheduler pressure
	// for stream overlap, not raw compute. The reference path always
	// serializes per entry regardless.
	ExecParallel int
	// DisableCompiled forces the reference Model.Forward execution path
	// even when the model compiles, for A/B comparison and tests.
	DisableCompiled bool
	// DisableInt8 drops quantized zoo entries at construction, so the
	// planner only ever routes to full-precision plans (A/B comparison and
	// strict bit-reproducibility deployments).
	DisableInt8 bool
	// DisableSIMD routes f32 GEMMs to the portable scalar kernel instead
	// of the AVX2 microkernel. The two are bit-identical, so this is purely
	// an oracle/debug knob (equivalence checks, profiling the scalar tier)
	// — results never change, only throughput. The kernel toggle is
	// process-wide: the last-constructed runtime's setting wins.
	DisableSIMD bool
	// DisableGOPSeek forces sequential full-stream decode for video
	// sampling: every frame up to the last sample is decoded (skipped
	// frames still pay motion compensation), as if no GOP index existed.
	// It is the A/B switch and the equivalence oracle for the GOP-seek
	// paths, mirroring DisableScaledDecode on the JPEG side.
	DisableGOPSeek bool
	// DisableProxyCascade forces SelectVideo to verify every sampled frame
	// with the chosen zoo entry instead of running the two-stage proxy
	// cascade: no proxy pass, no GOP pruning, no early termination. It is
	// the A/B switch and the equivalence oracle for selection queries —
	// the cascade must return the same frame set at a fraction of the
	// decode and inference work.
	DisableProxyCascade bool
	// SelectVerifyBatch is how many ranked candidates SelectVideo verifies
	// per engine submission before re-checking the early-termination
	// condition (0 = 16). Smaller batches stop closer to exactly Limit
	// confirmations; larger batches amortize pipeline overhead.
	SelectVerifyBatch int
	// VideoDecodeWorkers bounds the per-request pool of resident decoders
	// that store-backed video sampling fans disjoint GOPs across (0 =
	// min(GOMAXPROCS, 4)). Sampled frames still enter the shared engine in
	// frame order regardless of the pool size.
	VideoDecodeWorkers int
	// VideoDeblockPenalty is the validation-accuracy penalty the video
	// planner assumes when it serves a stream with the in-loop deblocking
	// filter disabled (the reduced-fidelity decode of §6.4): a candidate
	// plan's accuracy is the zoo entry's measured accuracy minus this
	// penalty, so deblock-off only wins when the QoS floor still holds.
	// Zero means the default 0.01; negative disables deblock-off plans
	// entirely.
	VideoDeblockPenalty float64
	// MaxCachedPlans bounds the compiled ingest-plan LRU cache (0 = 1024).
	// Input dimensions come from user-supplied images, so a resident
	// Server must not grow memory without bound; beyond the cap the least
	// recently used input class is evicted and recompiled on next sight.
	MaxCachedPlans int
	// Opts toggles engine optimizations (all on by default).
	Opts engine.Options
}

// Runtime executes classification over encoded images with a zoo of
// trained models, using the pipelined engine: decode -> preprocess ->
// batch -> model forward. A serving planner (see QoS and ServePlan)
// jointly picks the zoo entry, decode scale, and preprocessing chain per
// request. Use Classify for one-shot batches, or Serve to hold a warm
// engine that many concurrent callers share.
type Runtime struct {
	cfg RuntimeConfig

	// entries are the zoo's models lowered for execution, one engine shape
	// class each. A single-model Runtime is a zoo of one.
	entries []*rtEntry
	byName  map[string]*rtEntry

	// execSem bounds concurrent compiled forwards across all entries
	// (configurable exec parallelism), letting multiple engine streams
	// overlap execution.
	execSem chan struct{}

	// ingest caches compiled ingest plans keyed by input class (codec,
	// encoded dimensions, MCU geometry, target resolution) with LRU
	// eviction, so the joint decode+preprocess plan search and ROI mapping
	// run once per distinct input shape instead of once per image on the
	// hot prep path.
	ingest ingestCache

	// Planner state: the live calibration is measured once per runtime
	// (the video decode reference lazily, on the first video request), and
	// plan selections are memoized per (input class, QoS) — still-image
	// classes in sels, video stream-geometry classes in videoSels.
	calOnce    sync.Once
	vidCalOnce sync.Once
	cal        *hw.Calibration
	selMu      sync.Mutex
	sels       map[selKey]selection
	videoSels  map[videoSelKey]videoSelection
	selectSels map[selectSelKey]selectSelection
}

// rtEntry is one zoo entry lowered for serving: its compiled inference
// plan (or the serialized reference path), its engine shape class, and its
// recycled prediction buffers.
type rtEntry struct {
	ZooEntry
	name string
	// class is the entry's engine shape class index: the pipeline keeps a
	// tensor pool, staging arena, queue and streams per entry, so batch
	// geometry is per-variant rather than one global shape.
	class int
	// plan is the compiled inference path (folded batch-norm, fused GEMM
	// epilogues, recycled activation arenas). It is immutable and
	// reentrant; nil when compilation was disabled or the model shape is
	// unsupported.
	plan *nn.InferencePlan
	// qplan is the quantized int8 execution path, set only on int8 zoo
	// entries: the f32 plan lowered through the entry's persisted
	// activation calibration. Like plan it is immutable and reentrant, and
	// it takes precedence over plan when both exist.
	qplan *nn.QuantizedPlan
	// The reference model's layers cache per-forward state, so the
	// fallback path serializes behind execMu (one mutable compute resource
	// per entry); engine streams still overlap batch assembly with it.
	execMu sync.Mutex
	// preds recycles per-batch prediction buffers (as *[]int to avoid
	// interface boxing), keeping the compiled exec path allocation-free.
	preds sync.Pool
}

// NewRuntime wraps a single trained model (e.g. from LoadClassifier or
// TrainClassifier) for pipelined batch inference: a zoo of one, so every
// request runs the same plan regardless of QoS.
//
// Unless DisableCompiled is set, the model's weights (and batch-norm
// statistics) are snapshotted here into an immutable compiled plan:
// mutating the model afterwards — further training, reloading weights —
// does not affect this runtime. Construct a new Runtime after updating a
// model.
func NewRuntime(model *nn.Model, cfg RuntimeConfig) (*Runtime, error) {
	if model == nil {
		return nil, fmt.Errorf("smol: nil model")
	}
	if cfg.InputRes <= 0 {
		return nil, fmt.Errorf("smol: InputRes is required")
	}
	z := NewZoo()
	if err := z.Add(ZooEntry{Variant: "model", InputRes: cfg.InputRes, Accuracy: 1, Model: model}); err != nil {
		return nil, err
	}
	return NewZooRuntime(z, cfg)
}

// NewZooRuntime builds a serving runtime over a model zoo. Every entry is
// compiled once (unless DisableCompiled); the serving planner then picks
// the entry per request from its QoS target, using cost estimates
// calibrated against live measurements of the compiled plans and ingest
// kernels.
func NewZooRuntime(zoo *Zoo, cfg RuntimeConfig) (*Runtime, error) {
	if zoo == nil || zoo.Len() == 0 {
		return nil, fmt.Errorf("smol: empty zoo")
	}
	if cfg.Std == ([3]float32{}) {
		cfg.Std = [3]float32{1, 1, 1}
	}
	maxPlans := cfg.MaxCachedPlans
	if maxPlans <= 0 {
		maxPlans = 1024
	}
	// Bit-identical tiers make the process-wide flip safe: in-flight GEMMs
	// on other runtimes keep their results, only their speed tier moves.
	tensor.SetF32SIMD(!cfg.DisableSIMD)
	r := &Runtime{
		cfg:        cfg,
		byName:     make(map[string]*rtEntry),
		sels:       make(map[selKey]selection),
		videoSels:  make(map[videoSelKey]videoSelection),
		selectSels: make(map[selectSelKey]selectSelection),
	}
	r.ingest.init(maxPlans)
	for _, e := range zoo.Entries() {
		if e.Int8() && cfg.DisableInt8 {
			continue
		}
		ent := &rtEntry{ZooEntry: e, name: e.Name(), class: len(r.entries)}
		if !cfg.DisableCompiled {
			// Compilation fails only for layer shapes the plan vocabulary
			// does not cover; those models fall back to the serialized
			// reference path.
			if plan, err := nn.Compile(e.Model); err == nil {
				ent.plan = plan
			}
		}
		if e.Int8() {
			// An int8 entry has no reference fallback: it exists only as a
			// quantized plan, rebuilt bit-identically from the f32 weights
			// and the persisted activation scales. Failing to build it is a
			// configuration error, not a silent downgrade to f32.
			if ent.plan == nil {
				return nil, fmt.Errorf("smol: int8 zoo entry %s needs the compiled path (model does not compile or DisableCompiled is set)", ent.name)
			}
			qp, err := nn.Quantize(ent.plan, e.Calib)
			if err != nil {
				return nil, fmt.Errorf("smol: quantizing zoo entry %s: %w", ent.name, err)
			}
			ent.qplan = qp
		}
		r.entries = append(r.entries, ent)
		r.byName[ent.name] = ent
	}
	if len(r.entries) == 0 {
		return nil, fmt.Errorf("smol: zoo has no servable entries (all int8 with DisableInt8 set)")
	}
	par := cfg.ExecParallel
	if par <= 0 {
		par = 2
	}
	r.execSem = make(chan struct{}, par)
	return r, nil
}

// selectVerifyBatch resolves RuntimeConfig.SelectVerifyBatch.
func (r *Runtime) selectVerifyBatch() int {
	if r.cfg.SelectVerifyBatch > 0 {
		return r.cfg.SelectVerifyBatch
	}
	return 16
}

// videoDecodeWorkers resolves RuntimeConfig.VideoDecodeWorkers.
func (r *Runtime) videoDecodeWorkers() int {
	if r.cfg.VideoDecodeWorkers > 0 {
		return r.cfg.VideoDecodeWorkers
	}
	n := goruntime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Compiled reports whether every zoo entry executes through a compiled
// inference plan (parallel, f32 or int8) rather than the serialized
// reference model.
func (r *Runtime) Compiled() bool {
	for _, ent := range r.entries {
		if ent.plan == nil && ent.qplan == nil {
			return false
		}
	}
	return true
}

// Entries lists the zoo entry names ("variant@res") in shape-class order.
func (r *Runtime) Entries() []string {
	names := make([]string, len(r.entries))
	for i, ent := range r.entries {
		names[i] = ent.name
	}
	return names
}

// EncodedImage is one still-image input: bytes in one of the supported
// image codecs. It is the still-image shorthand for MediaInput; the serving
// stack converts it on entry and plans by codec.
type EncodedImage struct {
	// Data is the encoded image (JPEG from this repo's codec, or spng).
	Data []byte
	// PNG marks the data as spng-encoded rather than JPEG.
	PNG bool
}

// media lifts the still-image shorthand into the codec-tagged form the
// media-generic ingest and planning layers run on.
func (in EncodedImage) media() MediaInput {
	c := CodecJPEG
	if in.PNG {
		c = CodecPNG
	}
	return MediaInput{Codec: c, Data: in.Data}
}

// mediaInputs converts a still-image request to MediaInputs.
func mediaInputs(inputs []EncodedImage) []MediaInput {
	out := make([]MediaInput, len(inputs))
	for i, in := range inputs {
		out[i] = in.media()
	}
	return out
}

// ClassifyResult reports predictions in input order, the serving plan the
// planner chose for the request, and engine statistics.
type ClassifyResult struct {
	Predictions []int
	// Plan describes the planner's joint choice for this request: zoo
	// entry, decode scale, preprocessing chain, and predicted performance.
	Plan  ServePlan
	Stats engine.Stats
}

// classifyReq is the per-request state threaded through the engine via
// Job.Tag: the request's inputs, its prediction slots, and the zoo entry
// the planner chose for it. Many requests interleave in one warm pipeline;
// Refs route each sample back here. Batches never mix shape classes, so
// all samples of a batch share one entry.
//
// Still-image requests carry encoded inputs; video requests carry decoded
// frames instead (the request's resident vid.Decoder produced them in
// stream order — P-frames need their references — so prep workers only run
// the residual resize/crop/normalize chain).
type classifyReq struct {
	inputs []MediaInput
	// frames, when non-nil, marks a video request: frames[i] is the decoded
	// sampled frame for job i. The feeder writes each slot before
	// submitting its job, so workers read it race-free.
	frames []*img.Image
	// framePool, when non-nil, recycles consumed frame images back to the
	// request's decoder (ClassifyVideo's bounded-allocation loop).
	framePool *sync.Pool
	preds     []int
	entry     *rtEntry
}

// ingestKey identifies one class of inputs a compiled ingest plan covers.
// The MCU edge length matters because ROI regions align outward to the MCU
// grid, so two JPEGs with equal dimensions but different chroma subsampling
// decode to different region geometries; the target resolution matters
// because the planner may route equal inputs to different zoo entries; the
// codec matters because the levers differ per codec (scaled/ROI decode is
// JPEG-only, video frames arrive already decoded), so same-dimension inputs
// of different codecs must never share a cached plan.
type ingestKey struct {
	w, h, mcu, res int
	codec          Codec
}

// ingestPlan is the compiled decode+preprocess recipe for one input class:
// the jointly optimized decode scale, the precomputed (plan-time) ROI, and
// the residual operator chain that runs on the decoded image. It is
// immutable and shared across workers; prepFunc executes it with per-worker
// reusable buffers.
type ingestPlan struct {
	// full is the complete optimized plan, decode op included (reports,
	// cost accounting).
	full preproc.Plan
	// resid is full minus the decode op: what the preproc executor runs on
	// the image the codec already produced at the plan's scale.
	resid preproc.Plan
	// scale is the decode scale lowered into jpeg.DecodeOptions.Scale.
	scale int
	// roi, when non-nil, is the central-crop-covering region lowered into
	// jpeg.DecodeOptions.ROI. Decode options only read it, so sharing the
	// pointer across workers is safe.
	roi *img.Rect
}

// ingestCache is an LRU map of compiled ingest plans. Adversarially varied
// input resolutions evict the least recently used class instead of
// permanently disabling caching, so steady-state traffic keeps its
// zero-alloc cached path however hostile the warm-up was.
type ingestCache struct {
	mu  sync.Mutex
	cap int
	m   map[ingestKey]*list.Element
	l   *list.List // of *ingestCacheEntry, front = most recently used
}

type ingestCacheEntry struct {
	key  ingestKey
	plan *ingestPlan
}

func (c *ingestCache) init(capacity int) {
	c.cap = capacity
	c.m = make(map[ingestKey]*list.Element)
	c.l = list.New()
}

// get returns the cached plan for a key, marking it most recently used.
func (c *ingestCache) get(k ingestKey) (*ingestPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*ingestCacheEntry).plan, true
}

// put inserts a plan, evicting the least recently used entry beyond the
// cap. A concurrent worker may have won the race for this key; the first
// entry wins so all workers share one plan value.
func (c *ingestCache) put(k ingestKey, p *ingestPlan) *ingestPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.l.MoveToFront(el)
		return el.Value.(*ingestCacheEntry).plan
	}
	c.m[k] = c.l.PushFront(&ingestCacheEntry{key: k, plan: p})
	if c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*ingestCacheEntry).key)
	}
	return p
}

// len reports the resident entry count.
func (c *ingestCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}

// ingestFor returns the compiled ingest plan for one (input class, target
// resolution) pair, computing and caching it on first sight. Plan
// compilation runs the joint decode+preprocess optimization: the ROI (when
// enabled) is mapped and MCU-aligned once, the decode scale is chosen
// together with the residual resize/crop/normalize chain by
// preproc.Optimize, and the result is an immutable recipe prepFunc
// executes per image with pooled buffers.
func (r *Runtime) ingestFor(w, h, mcu int, codec Codec, res int) (*ingestPlan, error) {
	key := ingestKey{w: w, h: h, mcu: mcu, res: res, codec: codec}
	if ip, ok := r.ingest.get(key); ok {
		return ip, nil
	}
	decW, decH := w, h
	var roi *img.Rect
	if codec == CodecJPEG && r.cfg.ROIDecode {
		var region img.Rect
		roi, region = roiGeometry(w, h, res, mcu)
		decW, decH = region.W(), region.H()
	}
	var scales []int
	if codec == CodecJPEG && !r.cfg.DisableScaledDecode {
		scales = jpegDecodeScales
	}
	spec := preproc.ServeSpec(decW, decH, res, r.cfg.Mean, r.cfg.Std, scales)
	plan, err := preproc.Optimize(spec)
	if err != nil {
		return nil, err
	}
	ip := &ingestPlan{
		full:  plan,
		resid: plan.ResidualAfterDecode(),
		scale: plan.DecodeScale(),
		roi:   roi,
	}
	return r.ingest.put(key, ip), nil
}

// jpegDecodeScales are the decode factors the JPEG codec offers (full plus
// the reduced 4x4/2x2/1x1 IDCT reconstructions).
var jpegDecodeScales = jpeg.SupportedScales()

// roiGeometry maps the post-resize central crop for a res-input model back
// to source pixels of a w x h image, returning the ROI and its MCU-aligned
// cover (the region the decoder actually reconstructs). Shared by the
// ingest compiler (exact, with the stream's real MCU size) and the planner
// (estimate, with the worst-case MCU).
func roiGeometry(w, h, res, mcu int) (*img.Rect, img.Rect) {
	short := res * 256 / 224
	sw, sh := img.AspectPreservingSize(w, h, short)
	crop := img.CenterCropRect(sw, sh, res, res)
	scaleX := float64(w) / float64(sw)
	scaleY := float64(h) / float64(sh)
	roi := &img.Rect{
		X0: int(float64(crop.X0) * scaleX), Y0: int(float64(crop.Y0) * scaleY),
		X1: int(float64(crop.X1)*scaleX) + 1, Y1: int(float64(crop.Y1)*scaleY) + 1,
	}
	return roi, jpeg.AlignedRegion(*roi, w, h, mcu)
}

// ingestState is the per-worker mutable half of the ingest path: the
// reusable JPEG decoder (parsed headers, Huffman tables, planar scratch),
// the pooled decode output image, and the preproc executor's scratch
// buffers. The compiled ingestPlan supplies the immutable recipe.
type ingestState struct {
	ex  *preproc.Executor
	dec jpeg.Decoder
	// buf is the decoder's reused output image (jpeg.DecodeOptions.Dst).
	buf *img.Image
}

// prepFunc builds the engine preprocessing callback: look up (or compile)
// the input class's ingest plan for the request's chosen zoo entry, decode
// once at the plan's scale/ROI straight into worker-owned pooled buffers,
// then run the residual preproc chain into the engine's pooled output
// tensor. The JPEG headers are parsed exactly once per image (the Decoder
// carries the parse into the decode), and a warm worker performs no
// per-image allocations. Video jobs arrive with their frame already decoded
// (the request's resident decoder owns the sequential I/P stream), so the
// worker runs only the residual chain and recycles the frame buffer.
func (r *Runtime) prepFunc() engine.PrepFunc {
	return r.prepJob
}

// prepJob is the body of the engine preprocessing callback. The warm
// path — cached ingest plan, reused decoder output, pooled frame buffers
// — performs no per-image allocations; only plan compilation, scratch
// warm-up, and error construction may allocate.
//
//smol:noalloc
func (r *Runtime) prepJob(ws *engine.WorkerState, job engine.Job, out *tensor.Tensor) error {
	cr, ok := job.Tag.(*classifyReq)
	if !ok {
		//smol:coldpath malformed job
		return fmt.Errorf("smol: job %d carries no request state", job.Index)
	}
	res := cr.entry.InputRes
	st, _ := ws.Scratch.(*ingestState)
	if st == nil {
		//smol:coldpath per-worker scratch warm-up
		st = &ingestState{ex: preproc.NewExecutor()}
		ws.Scratch = st
	}
	if cr.frames != nil {
		m := cr.frames[job.Index]
		if m == nil {
			//smol:coldpath malformed job
			return fmt.Errorf("smol: video job %d carries no decoded frame", job.Index)
		}
		ip, err := r.ingestFor(m.W, m.H, 0, CodecVideo, res)
		if err != nil {
			return err
		}
		err = st.ex.Execute(ip.resid, m, out)
		if cr.framePool != nil {
			cr.frames[job.Index] = nil
			cr.framePool.Put(m)
		}
		return err
	}
	in := cr.inputs[job.Index]
	switch in.Codec {
	case CodecPNG:
		m, err := spng.Decode(in.Data)
		if err != nil {
			return err
		}
		ip, err := r.ingestFor(m.W, m.H, 0, CodecPNG, res)
		if err != nil {
			return err
		}
		return st.ex.Execute(ip.resid, m, out)
	case CodecJPEG:
		w, h, err := st.dec.Parse(in.Data)
		if err != nil {
			return err
		}
		ip, err := r.ingestFor(w, h, st.dec.MCUSize(), CodecJPEG, res)
		if err != nil {
			return err
		}
		m, _, _, err := st.dec.Decode(jpeg.DecodeOptions{
			ROI:   ip.roi,
			Scale: ip.scale,
			Dst:   st.buf,
		})
		if err != nil {
			return err
		}
		st.buf = m
		return st.ex.Execute(ip.resid, m, out)
	default:
		//smol:coldpath malformed job
		return fmt.Errorf("smol: job %d: unsupported codec %v in still-image request", job.Index, in.Codec)
	}
}

// execFunc builds the engine execution callback: a model forward whose
// outputs are routed to each sample's originating request. The engine
// never mixes shape classes in a batch, so the batch's zoo entry is the
// one its first ref's request chose. With a compiled plan, forwards from
// different engine streams run concurrently up to the ExecParallel bound;
// the reference path serializes behind the entry's execMu because the
// model's layers carry mutable per-forward caches.
func (r *Runtime) execFunc() engine.BatchFunc {
	return func(batch *tensor.Tensor, refs []engine.Ref) error {
		if len(refs) == 0 {
			return nil
		}
		first, ok := refs[0].Tag.(*classifyReq)
		if !ok {
			return fmt.Errorf("smol: sample %d carries no request state", refs[0].Index)
		}
		ent := first.entry
		var out []int
		if ent.plan != nil || ent.qplan != nil {
			n := batch.Shape[0]
			pooled, _ := ent.preds.Get().(*[]int)
			if pooled == nil || cap(*pooled) < n {
				pooled = new([]int)
				*pooled = make([]int, n)
			}
			// The pooled buffer goes back on every exit path — error,
			// panic, or success — and the closure releases the semaphore
			// slot even if the forward panics, so a poisoned batch can't
			// leak execution capacity.
			defer ent.preds.Put(pooled)
			out = (*pooled)[:n]
			func() {
				r.execSem <- struct{}{}
				defer func() { <-r.execSem }()
				if ent.qplan != nil {
					ent.qplan.PredictInto(batch, out)
				} else {
					ent.plan.PredictInto(batch, out)
				}
			}()
		} else {
			ent.execMu.Lock()
			out = ent.Model.Predict(batch)
			ent.execMu.Unlock()
		}
		for i, ref := range refs {
			cr, ok := ref.Tag.(*classifyReq)
			if !ok {
				return fmt.Errorf("smol: sample %d carries no request state", ref.Index)
			}
			cr.preds[ref.Index] = out[i]
		}
		return nil
	}
}

// engineConfig maps the runtime configuration onto the engine topology:
// one shape class per zoo entry, so each variant keeps its own tensor
// pool, staging arena, and batch geometry inside the shared pipeline.
func (r *Runtime) engineConfig() engine.Config {
	shapes := make([][3]int, len(r.entries))
	for i, ent := range r.entries {
		shapes[i] = [3]int{3, ent.InputRes, ent.InputRes}
	}
	return engine.Config{
		Workers:   r.cfg.Workers,
		BatchSize: r.cfg.BatchSize,
		Shapes:    shapes,
		Opts:      r.cfg.Opts,
	}
}

// Classify runs the full pipeline over the encoded inputs under the
// runtime's default QoS. It is a one-shot wrapper over the streaming core:
// a pipeline is brought up, the inputs stream through it, and it is torn
// down. Callers serving many requests should use Serve instead and keep
// the engine warm.
func (r *Runtime) Classify(inputs []EncodedImage) (ClassifyResult, error) {
	return r.ClassifyQoS(inputs, r.cfg.QoS)
}

// ClassifyQoS is Classify with an explicit serving target.
func (r *Runtime) ClassifyQoS(inputs []EncodedImage, qos QoS) (ClassifyResult, error) {
	srv, err := r.Serve()
	if err != nil {
		return ClassifyResult{}, err
	}
	defer srv.Close()
	return srv.ClassifyQoS(context.Background(), inputs, qos)
}
