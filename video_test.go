package smol

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"smol/internal/data"
)

// renderClassVideo draws frames carrying the tiny classifier's class
// patterns (alternating per frame), so video predictions are meaningful and
// comparable against still-image classification of the same pixels.
func renderClassVideo(t testing.TB, n, res int) ([]*Image, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	frames := make([]*Image, n)
	labels := make([]int, n)
	for i := range frames {
		c := i % 2
		frames[i] = data.RenderImage(rng, c, 2, res)
		labels[i] = c
	}
	return frames, labels
}

func encodeClassVideo(t testing.TB, frames []*Image, quality, gop int) []byte {
	t.Helper()
	enc, err := EncodeVideo(frames, quality, gop)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestClassifyVideoMatchesOfflineDecode is the acceptance equivalence: with
// the deblocking filter forced on, ClassifyVideo's per-frame predictions
// must be bit-identical to decoding each sampled frame offline and pushing
// it through Classify (losslessly PNG-encoded, so the only difference is
// the serving path itself: resident decoder, frame recycling, shared
// batches).
func TestClassifyVideoMatchesOfflineDecode(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames, _ := renderClassVideo(t, 24, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	const stride = 3
	res, err := srv.ClassifyVideo(context.Background(), enc, VideoOpts{Stride: stride, Deblock: DeblockOn})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Deblock {
		t.Fatal("ForceDeblock plan reports deblocking off")
	}
	wantN := (len(frames) + stride - 1) / stride
	if len(res.Predictions) != wantN || len(res.FrameIndices) != wantN {
		t.Fatalf("%d predictions / %d indices, want %d", len(res.Predictions), len(res.FrameIndices), wantN)
	}
	// Offline baseline: full-fidelity decode, lossless PNG, still path.
	decoded, err := DecodeVideo(enc, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, fi := range res.FrameIndices {
		if fi != i*stride {
			t.Fatalf("sample %d maps to frame %d, want %d", i, fi, i*stride)
		}
		still, err := srv.Classify(context.Background(), []EncodedImage{{Data: EncodePNG(decoded[fi]), PNG: true}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Predictions[i] != still.Predictions[0] {
			t.Fatalf("frame %d: video path predicted %d, offline still path %d",
				fi, res.Predictions[i], still.Predictions[0])
		}
	}
	// The resident decoder stops after the last sampled frame: frames past
	// it are never needed as references. With GOP seek (the default) whole
	// groups between samples are bypassed outright, so decoded + bypassed
	// must exactly tile the prefix up to the last sample, and the decoded
	// share can only shrink.
	span := (wantN-1)*stride + 1
	if got := res.Decode.FramesDecoded + res.Decode.FramesBypassed; got != span {
		t.Fatalf("decoded %d + bypassed %d = %d frames, want the sampled prefix %d",
			res.Decode.FramesDecoded, res.Decode.FramesBypassed, got, span)
	}
	if res.Decode.FramesDecoded > span {
		t.Fatalf("decoder reports %d frames decoded, more than the sampled prefix %d", res.Decode.FramesDecoded, span)
	}
}

// TestClassifyVideoSeekMatchesSequential is the raw-stream A/B: the
// GOP-seek serving path (default) and the sequential full-decode path
// (DisableGOPSeek, the equivalence oracle) must emit bit-identical
// predictions while the seek path decodes strictly fewer frames whenever a
// stride jumps over whole GOPs.
func TestClassifyVideoSeekMatchesSequential(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	frames, _ := renderClassVideo(t, 47, 48)
	enc := encodeClassVideo(t, frames, 85, 5)
	ctx := context.Background()

	run := func(disable bool, stride int) VideoResult {
		t.Helper()
		rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2, DisableGOPSeek: disable})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := rt.Serve()
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		res, err := srv.ClassifyVideo(ctx, enc, VideoOpts{Stride: stride, Deblock: DeblockOn})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, stride := range []int{1, 3, 5, 11, 20} {
		seek := run(false, stride)
		seq := run(true, stride)
		if len(seek.Predictions) != len(seq.Predictions) {
			t.Fatalf("stride %d: %d seek predictions vs %d sequential", stride, len(seek.Predictions), len(seq.Predictions))
		}
		for i := range seek.Predictions {
			if seek.Predictions[i] != seq.Predictions[i] {
				t.Fatalf("stride %d sample %d: seek predicted %d, sequential %d",
					stride, i, seek.Predictions[i], seq.Predictions[i])
			}
		}
		span := (len(seq.Predictions)-1)*stride + 1
		if seq.Decode.FramesDecoded != span || seq.Decode.FramesBypassed != 0 {
			t.Fatalf("stride %d: sequential path decoded %d (bypassed %d), want %d (0)",
				stride, seq.Decode.FramesDecoded, seq.Decode.FramesBypassed, span)
		}
		if got := seek.Decode.FramesDecoded + seek.Decode.FramesBypassed; got != span {
			t.Fatalf("stride %d: seek path decoded %d + bypassed %d != span %d",
				stride, seek.Decode.FramesDecoded, seek.Decode.FramesBypassed, span)
		}
		if stride > 5 && seek.Decode.FramesDecoded >= seq.Decode.FramesDecoded {
			// Strides beyond the GOP interval must jump over whole groups.
			t.Fatalf("stride %d: seek path decoded %d frames, sequential %d — no savings",
				stride, seek.Decode.FramesDecoded, seq.Decode.FramesDecoded)
		}
	}
}

// TestVideoDeblockDriftBound: reduced-fidelity decode (deblocking off) may
// shift individual predictions, but on trivially separable content the
// drift against full-fidelity decode must stay small — the §6.4 lever
// trades bounded accuracy for decode speed.
func TestVideoDeblockDriftBound(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames, _ := renderClassVideo(t, 30, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	ctx := context.Background()
	on, err := srv.ClassifyVideo(ctx, enc, VideoOpts{Deblock: DeblockOn})
	if err != nil {
		t.Fatal(err)
	}
	off, err := srv.ClassifyVideo(ctx, enc, VideoOpts{Deblock: DeblockOff})
	if err != nil {
		t.Fatal(err)
	}
	if off.Plan.Deblock {
		t.Fatal("DeblockOff plan reports deblocking on")
	}
	if off.Decode.DeblockedEdges != 0 {
		t.Fatalf("deblock-off decode still filtered %d edges", off.Decode.DeblockedEdges)
	}
	drift := 0
	for i := range on.Predictions {
		if on.Predictions[i] != off.Predictions[i] {
			drift++
		}
	}
	if frac := float64(drift) / float64(len(on.Predictions)); frac > 0.2 {
		t.Fatalf("deblock-off drift %d/%d = %.2f exceeds 0.2", drift, len(on.Predictions), frac)
	}
}

// TestVideoPlannerJointChoice: the video planner must trade fidelity for
// throughput exactly like the still planner trades zoo entries — a strict
// accuracy floor pins full fidelity (deblocking on, full-resolution
// rendition, accurate entry), while an unconstrained request routes to the
// cheap rendition and the cheap entry.
func TestVideoPlannerJointChoice(t *testing.T) {
	zoo, _ := trainTinyZoo(t)
	rt, err := NewZooRuntime(zoo, RuntimeConfig{BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frames, _ := renderClassVideo(t, 12, 96)
	full := encodeClassVideo(t, frames, 85, 6)
	low := make([]*Image, len(frames))
	for i, f := range frames {
		low[i] = f.ResizeBilinear(12, 12) // below the 16px entry's resize target
	}
	lowEnc := encodeClassVideo(t, low, 85, 6)
	ctx := context.Background()

	strict, err := srv.ClassifyVideo(ctx, full, VideoOpts{
		QoS:      QoS{MinAccuracy: 0.95},
		Variants: [][]byte{lowEnc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Plan.Entry != "resnet-a@16" || !strict.Plan.Deblock || strict.Plan.Stream != 0 {
		t.Fatalf("strict floor chose %+v, want resnet-a@16 / deblock on / stream 0", strict.Plan)
	}
	relaxed, err := srv.ClassifyVideo(ctx, full, VideoOpts{
		Variants: [][]byte{lowEnc},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained, the cheap rendition and the cheap entry win.
	// (Deblocking may legitimately stay on when it is not the bottleneck —
	// the planner only trades fidelity that buys throughput.)
	if relaxed.Plan.Stream != 1 || relaxed.Plan.Entry != "resnet-a@8" {
		t.Fatalf("unconstrained request chose %+v, want resnet-a@8 on low-res stream 1", relaxed.Plan)
	}
	// An unsatisfiable floor fails loudly.
	if _, err := srv.ClassifyVideo(ctx, full, VideoOpts{QoS: QoS{MinAccuracy: 0.99}}); err == nil {
		t.Fatal("unsatisfiable accuracy floor should error")
	}
	// A rendition with a different frame count is not the same content on
	// the same timeline; routing to it would silently reindex results.
	short := encodeClassVideo(t, frames[:6], 85, 6)
	if _, err := srv.ClassifyVideo(ctx, full, VideoOpts{Variants: [][]byte{short}}); err == nil {
		t.Fatal("frame-count-mismatched variant should error")
	}

	// A request without its own QoS inherits the runtime default, like
	// still-image Classify.
	rtFloor, err := NewZooRuntime(zoo, RuntimeConfig{
		BatchSize: 8, Workers: 2, QoS: QoS{MinAccuracy: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	srvFloor, err := rtFloor.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srvFloor.Close()
	inherited, err := srvFloor.ClassifyVideo(ctx, full, VideoOpts{Variants: [][]byte{lowEnc}})
	if err != nil {
		t.Fatal(err)
	}
	if inherited.Plan.Entry != "resnet-a@16" || !inherited.Plan.Deblock {
		t.Fatalf("default-QoS request ignored the runtime floor: %+v", inherited.Plan)
	}

	// A runtime that forbids reduced-fidelity decode rejects forced
	// DeblockOff and never chooses it on its own.
	rtNoOff, err := NewZooRuntime(zoo, RuntimeConfig{
		BatchSize: 8, Workers: 2, VideoDeblockPenalty: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvNoOff, err := rtNoOff.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srvNoOff.Close()
	if _, err := srvNoOff.ClassifyVideo(ctx, full, VideoOpts{Deblock: DeblockOff}); err == nil {
		t.Fatal("forced DeblockOff should fail when deblock-off plans are disabled")
	}
	auto, err := srvNoOff.ClassifyVideo(ctx, full, VideoOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Plan.Deblock {
		t.Fatal("deblock-off plan chosen despite VideoDeblockPenalty < 0")
	}
}

// TestIngestPlansNeverSharedAcrossCodecs: same-dimension inputs of
// different codecs must compile distinct ingest plans — the regression the
// codec-tagged ingestKey exists to prevent (a JPEG plan carries a decode
// scale its codec implements; a PNG or video frame plan must not inherit
// it).
func TestIngestPlansNeverSharedAcrossCodecs(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16})
	if err != nil {
		t.Fatal(err)
	}
	jp, err := rt.ingestFor(64, 64, 8, CodecJPEG, 16)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := rt.ingestFor(64, 64, 0, CodecPNG, 16)
	if err != nil {
		t.Fatal(err)
	}
	vd, err := rt.ingestFor(64, 64, 0, CodecVideo, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ingest.len() != 3 {
		t.Fatalf("3 codecs share %d cached plans", rt.ingest.len())
	}
	if jp == pn || jp == vd || pn == vd {
		t.Fatal("plans shared across codecs")
	}
	if jp.scale != 4 {
		t.Fatalf("64x64 JPEG to 16px should decode at 1/4, got 1/%d", jp.scale)
	}
	if pn.scale != 1 || vd.scale != 1 {
		t.Fatalf("PNG/video plans carry decode scales 1/%d and 1/%d", pn.scale, vd.scale)
	}
	// Same dims and codec but different MCU geometry also stay distinct.
	if jp420, err := rt.ingestFor(64, 64, 16, CodecJPEG, 16); err != nil {
		t.Fatal(err)
	} else if jp420 == jp {
		t.Fatal("different MCU geometries share a plan")
	}
}

// TestVideoStillMixedRace: eight concurrent callers — video streams and
// still images interleaved — share one warm server; every caller must get
// exactly its own predictions back. Run under -race this is the shared
// per-class pool/batch-stream safety check for the media-generic pipeline.
func TestVideoStillMixedRace(t *testing.T) {
	clf, test := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	frames, _ := renderClassVideo(t, 18, 48)
	enc := encodeClassVideo(t, frames, 85, 6)
	stills := encodeTestSet(test)
	videoRef, err := srv.ClassifyVideo(ctx, enc, VideoOpts{Stride: 2, Deblock: DeblockOn})
	if err != nil {
		t.Fatal(err)
	}
	stillRef, err := srv.Classify(ctx, stills)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	bad := make([]string, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if c%2 == 0 {
				res, err := srv.ClassifyVideo(ctx, enc, VideoOpts{Stride: 2, Deblock: DeblockOn})
				if err != nil {
					errs[c] = err
					return
				}
				for i := range res.Predictions {
					if res.Predictions[i] != videoRef.Predictions[i] {
						bad[c] = "video predictions diverged across concurrent callers"
						return
					}
				}
			} else {
				res, err := srv.Classify(ctx, stills)
				if err != nil {
					errs[c] = err
					return
				}
				for i := range res.Predictions {
					if res.Predictions[i] != stillRef.Predictions[i] {
						bad[c] = "still predictions diverged across concurrent callers"
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if bad[c] != "" {
			t.Fatalf("caller %d: %s", c, bad[c])
		}
	}
}

// TestEstimateMeanServing: the control-variate aggregation through the
// warm server must (a) reproduce the exact mean of the target model's
// predictions when the error target forces exhaustive sampling, and (b)
// spend fewer target invocations under a looser target.
func TestEstimateMeanServing(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16, BatchSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()

	frames, _ := renderClassVideo(t, 64, 48)
	enc := encodeClassVideo(t, frames, 85, 8)

	// Exact target mean from classifying every frame through the same
	// fidelity (deblock forced on in both paths).
	all, err := srv.ClassifyVideo(ctx, enc, VideoOpts{Deblock: DeblockOn})
	if err != nil {
		t.Fatal(err)
	}
	var exact float64
	for _, p := range all.Predictions {
		exact += float64(p)
	}
	exact /= float64(len(all.Predictions))

	exhaustive, err := srv.EstimateMean(ctx, enc, AggregateOpts{
		ErrTarget: 1e-9, Deblock: DeblockOn, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Frames != len(frames) || exhaustive.TargetInvocations != len(frames) {
		t.Fatalf("exhaustive query used %d/%d invocations", exhaustive.TargetInvocations, exhaustive.Frames)
	}
	if math.Abs(exhaustive.Estimate-exact) > 1e-9 {
		t.Fatalf("exhaustive estimate %.6f != exact mean %.6f", exhaustive.Estimate, exact)
	}
	loose, err := srv.EstimateMean(ctx, enc, AggregateOpts{
		ErrTarget: 0.5, Deblock: DeblockOn, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loose.TargetInvocations >= exhaustive.TargetInvocations {
		t.Fatalf("loose target used %d invocations, exhaustive %d", loose.TargetInvocations, exhaustive.TargetInvocations)
	}
	if loose.HalfWidth > 0.5 {
		t.Fatalf("loose query stopped at half-width %.3f > target 0.5", loose.HalfWidth)
	}
	if _, err := srv.EstimateMean(ctx, enc, AggregateOpts{}); err == nil {
		t.Fatal("zero error target should error")
	}
	// A cancelled context aborts the query during the decode pass.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := srv.EstimateMean(cctx, enc, AggregateOpts{ErrTarget: 0.5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled EstimateMean returned %v", err)
	}

	// Past the retention budget EstimateMean re-decodes sampled frames
	// instead of keeping the whole stream resident; the decode is
	// deterministic, so the answer must be identical.
	defer func(n int) { aggRetainBytes = n }(aggRetainBytes)
	aggRetainBytes = 8 * 48 * 48 * 3
	bounded, err := srv.EstimateMean(ctx, enc, AggregateOpts{
		ErrTarget: 1e-9, Deblock: DeblockOn, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Estimate != exhaustive.Estimate || bounded.TargetInvocations != exhaustive.TargetInvocations {
		t.Fatalf("re-decode path answered %.6f (%d invocations), retained path %.6f (%d)",
			bounded.Estimate, bounded.TargetInvocations, exhaustive.Estimate, exhaustive.TargetInvocations)
	}
}

// TestClassifyRejectsVideoInputs documents the routing contract: a video
// stream is one request, not one sample, so the still-image entry point
// refuses it.
func TestClassifyRejectsVideoInputs(t *testing.T) {
	clf, _ := trainTinyClassifier(t)
	rt, err := NewRuntime(clf.Model, RuntimeConfig{InputRes: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := rt.Serve()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	frames, _ := renderClassVideo(t, 4, 32)
	enc := encodeClassVideo(t, frames, 85, 4)
	_, err = srv.ClassifyMedia(context.Background(), []MediaInput{{Codec: CodecVideo, Data: enc}}, QoS{})
	if err == nil {
		t.Fatal("ClassifyMedia accepted a video stream")
	}
	// Unknown codecs are rejected at planning time, not deep in a worker.
	_, err = srv.ClassifyMedia(context.Background(), []MediaInput{{Codec: Codec(7), Data: enc}}, QoS{})
	if err == nil {
		t.Fatal("ClassifyMedia accepted an unknown codec")
	}
}
